// Package core implements the paper's primary contribution: a cycle-level
// model of a simultaneous-multithreaded, access/execute-decoupled
// processor.
//
// Each hardware context runs in decoupled mode: at dispatch, instructions
// are steered by data type to the Address Processor (integer, memory and
// branch instructions) or the Execute Processor (floating-point), each of
// which issues **in order within each thread's stream**. The per-thread
// Instruction Queue between dispatch and the EP lets the AP slip ahead,
// issuing loads long before the EP consumes their values — the decoupling
// that hides memory latency. All threads share the issue slots (full
// simultaneous issue with round-robin priority), the functional units and
// the caches; fetch picks the two threads with the fewest instructions
// pending dispatch (ICOUNT).
//
// The "non-decoupled" comparison machine of the paper (instruction queues
// disabled) is the same hardware with slippage suppressed: each thread
// issues in program order across *both* units, like a conventional
// in-order superscalar with separate integer/FP pipelines.
//
// The model is trace driven and simulates the correct path only: on a
// branch misprediction the thread's fetch freezes until the branch
// resolves in the AP (plus a one-cycle redirect), and the lost slots are
// accounted in the same "wrong-path or idle" bucket the paper uses.
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Core is the shared machine: issue logic, functional units, memory
// subsystem, plus one Context per hardware thread.
type Core struct {
	cfg  config.Machine
	mem  *mem.System
	ctxs []*Context

	now int64
	// rotate gives round-robin priority for issue, dispatch and cache
	// access across threads; it advances every cycle.
	rotate int

	col stats.Collector

	// skippedCycles counts cycles fast-forwarded over rather than ticked
	// (for reporting; they are fully accounted in the collector).
	skippedCycles int64
	// progressed reports whether the last Tick changed machine state
	// beyond the constant per-cycle stall accounting. A cycle without
	// progress is provably identical to every following cycle up to the
	// next scheduled event, which is what lets Step fast-forward.
	progressed bool
	// dispatchStallDelta and conflictStallDelta are the last Tick's
	// increments of the corresponding collector counters, replayed per
	// skipped cycle by fastForward.
	dispatchStallDelta int64
	conflictStallDelta int64

	// scratch buffers reused every cycle (avoid per-cycle allocation).
	reasonBuf [isa.NumUnits][]stats.WasteReason
	// memStallBuf lists the stream heads whose MemStall counter advanced
	// this cycle (rebuilt alongside reasonBuf, replayed by fastForward).
	memStallBuf []*DynInst
	fetchPick   []int
	orderBuf    []int
}

// New builds a core for machine m (after applying the latency scaling
// rule) with one instruction source per thread.
func New(m config.Machine, sources []trace.Reader) (*Core, error) {
	m = m.Effective()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != m.Threads {
		return nil, fmt.Errorf("core: %d sources for %d threads", len(sources), m.Threads)
	}
	ms, err := mem.New(m.Mem)
	if err != nil {
		return nil, err
	}
	c := &Core{cfg: m, mem: ms}
	for i := 0; i < m.Threads; i++ {
		ctx, err := newContext(i, m, sources[i])
		if err != nil {
			return nil, err
		}
		c.ctxs = append(c.ctxs, ctx)
	}
	for u := range c.reasonBuf {
		c.reasonBuf[u] = make([]stats.WasteReason, 0, m.Threads)
	}
	c.fetchPick = make([]int, 0, m.Threads)
	c.orderBuf = make([]int, 0, m.Threads)
	return c, nil
}

// Config returns the effective (scaled) machine configuration.
func (c *Core) Config() config.Machine { return c.cfg }

// Mem returns the memory subsystem.
func (c *Core) Mem() *mem.System { return c.mem }

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// SkippedCycles returns how many cycles Step fast-forwarded over instead
// of simulating stage by stage. The skipped cycles are fully accounted in
// the collector; this counter only measures the scheduler's leverage.
func (c *Core) SkippedCycles() int64 { return c.skippedCycles }

// Collector returns the statistics collector (mutable; reset between
// warm-up and measurement).
func (c *Core) Collector() *stats.Collector { return &c.col }

// Context returns thread t's context (for tests and reports).
func (c *Core) Context(t int) *Context { return c.ctxs[t] }

// Done reports whether every thread has exhausted its source and drained
// its pipeline.
func (c *Core) Done() bool {
	for _, ctx := range c.ctxs {
		if !ctx.Exhausted || ctx.InFlight() > 0 || ctx.FetchBuf.Len() > 0 {
			return false
		}
	}
	return true
}

// Tick advances the machine by one cycle. Stages run back to front so a
// value produced in cycle N is consumable in cycle N+latency and a fetched
// instruction dispatches no earlier than the following cycle.
func (c *Core) Tick() {
	c.now++
	c.col.Cycles++
	c.progressed = false
	dispatchStalls := c.col.DispatchStalls
	conflictStalls := c.col.LoadConflictStalls
	if c.mem.BeginCycle(c.now) > 0 {
		c.progressed = true
	}
	c.resolveBranches()
	c.graduate()
	c.cacheAccess()
	c.issue()
	c.dispatch()
	c.fetch()
	c.rotate++
	c.dispatchStallDelta = c.col.DispatchStalls - dispatchStalls
	c.conflictStallDelta = c.col.LoadConflictStalls - conflictStalls
}

// Step advances the machine by at least one cycle, fast-forwarding over
// provably idle stretches: when a Tick makes no forward progress, every
// following cycle is identical to it until the next scheduled event (a
// load or store completes, a branch resolves, fetch unfreezes, an operand
// arrives), so Step jumps directly to the cycle before that event,
// bulk-accounting the skipped cycles into the same waste buckets stepping
// would fill. Results are bit-identical to calling Tick in a loop. The
// machine never advances past the absolute cycle horizon.
func (c *Core) Step(horizon int64) {
	c.Tick()
	// A tick that discovers source exhaustion can drain the machine
	// without registering progress; never skip once Done.
	if c.progressed || c.now >= horizon || c.Done() {
		return
	}
	end := c.nextEventAt() - 1
	if end > horizon {
		end = horizon
	}
	if end > c.now {
		c.fastForward(end - c.now)
	}
}

// Run advances until every source is drained or the cycle limit is hit
// (fast-forwarding over idle stretches); it returns the number of cycles
// executed and whether the machine drained.
func (c *Core) Run(maxCycles int64) (int64, bool) {
	start := c.now
	for !c.Done() {
		if c.now-start >= maxCycles {
			return c.now - start, false
		}
		c.Step(start + maxCycles)
	}
	return c.now - start, true
}

// RunStepped is Run without fast-forwarding: the golden reference the
// equivalence tests compare Run against, and the baseline the speedup
// benchmarks measure.
func (c *Core) RunStepped(maxCycles int64) (int64, bool) {
	start := c.now
	for !c.Done() {
		if c.now-start >= maxCycles {
			return c.now - start, false
		}
		c.Tick()
	}
	return c.now - start, true
}

// ----------------------------------------------------------------------------
// Fast-forward.

// nextEventAt returns the earliest cycle strictly after now at which the
// machine's state can change: the minimum over every per-context event
// source and the memory system's pending refills. Never when nothing is
// scheduled (the machine is deadlocked or drained).
func (c *Core) nextEventAt() int64 {
	next := Never
	for _, ctx := range c.ctxs {
		if at := ctx.NextEventAt(c.now); at < next {
			next = at
		}
	}
	if at := c.mem.NextEventAt(c.now); at < next {
		next = at
	}
	return next
}

// fastForward bulk-accounts k cycles identical to the one just simulated.
// Only the constant per-cycle deltas of a no-progress cycle exist: the
// cycle counter, each unit's offered and wasted issue slots, the blocked
// heads' memory-stall counters, and the dispatch/load-conflict stall
// counters. The float additions are repeated rather than multiplied so the
// waste buckets stay bit-identical to stepping.
func (c *Core) fastForward(k int64) {
	c.skippedCycles += k
	for i := int64(0); i < k; i++ {
		c.col.Cycles++
		// On a no-progress cycle nothing issued, so every slot was left
		// over: accountSlots with left == width repeats the recorded
		// cycle's accounting exactly (reasonBuf still holds its reasons).
		c.accountSlots(isa.AP, c.cfg.APWidth, c.cfg.APWidth)
		c.accountSlots(isa.EP, c.cfg.EPWidth, c.cfg.EPWidth)
	}
	for _, d := range c.memStallBuf {
		d.MemStall += k
	}
	c.col.DispatchStalls += k * c.dispatchStallDelta
	c.col.LoadConflictStalls += k * c.conflictStallDelta
	c.rotate += int(k)
	c.now += k
}

// rotStart returns this cycle's round-robin starting thread, and rotNext
// the following index (modulo-free wrap). Every rotated stage walk uses
// this pair so the rotation policy lives in one place.
func (c *Core) rotStart() int { return c.rotate % len(c.ctxs) }

func (c *Core) rotNext(t int) int {
	if t++; t == len(c.ctxs) {
		return 0
	}
	return t
}

// ----------------------------------------------------------------------------
// Branch resolution.

// resolveBranches retires issued branches whose AP latency has elapsed:
// releases the speculation slot and un-freezes fetch after a
// misprediction (one-cycle redirect). Predictor state is trained at fetch
// (see fetchThread): in a correct-path-only trace-driven model the fetch
// stream is the architectural branch stream, so in-order training there
// keeps history-based predictors (gshare) consistent; resolution here
// only drives the pipeline timing.
func (c *Core) resolveBranches() {
	for _, ctx := range c.ctxs {
		if c.now < ctx.nextBranchResolveAt {
			continue // earliest issued branch is not due yet: skip the scan
		}
		br := ctx.unresolvedBranches
		next := Never
		for i := 0; i < len(br); {
			b := br[i]
			if !b.Issued || b.DoneAt > c.now {
				if b.Issued && b.DoneAt < next {
					next = b.DoneAt
				}
				i++
				continue
			}
			ctx.Unresolved--
			c.col.Branches++
			c.progressed = true
			if b.Mispredicted {
				c.col.Mispredicts++
				if ctx.FetchBlocked == b {
					ctx.FetchBlocked = nil
					ctx.FetchResumeAt = c.now + 1 // redirect penalty
				}
			}
			// Swap-remove: every branch due this cycle retires regardless
			// of list position (retirement is keyed by DoneAt alone), so
			// order need not be preserved.
			last := len(br) - 1
			br[i] = br[last]
			br[last] = nil
			br = br[:last]
		}
		ctx.unresolvedBranches = br
		ctx.nextBranchResolveAt = next
	}
}

// ----------------------------------------------------------------------------
// Graduation.

// graduate retires completed instructions from each ROB head in program
// order. Stores graduate by writing to the cache (write-back,
// write-allocate); a store blocked on its data operand or on a cache
// structural hazard stalls its thread's graduation, which is what bounds
// the AP's run-ahead when the EP falls far behind.
func (c *Core) graduate() {
	t := c.rotStart()
	for k := 0; k < len(c.ctxs); k++ {
		ctx := c.ctxs[t]
		t = c.rotNext(t)
		budget := c.cfg.GraduateWidth
		for budget > 0 {
			d, ok := ctx.ROB.Peek()
			if !ok {
				break
			}
			if d.IsStore() {
				if !c.tryCommitStore(ctx, d) {
					break
				}
			} else if d.DoneAt > c.now {
				break
			}
			ctx.ROB.Pop()
			c.progressed = true
			if d.Dest.Valid() {
				ctx.file(d.DestFile).Free(d.POld)
			}
			c.col.Graduated++
			c.col.GraduatedByOp[d.Op]++
			ctx.release(d)
			budget--
		}
	}
}

// tryCommitStore attempts to write the store at the ROB head into the
// cache. It returns false if the store is not ready (address not yet
// computed, data operand not ready) or the cache rejected it this cycle.
func (c *Core) tryCommitStore(ctx *Context, d *DynInst) bool {
	if !d.Issued || c.now < d.AccessAt {
		return false // address not computed yet
	}
	if !ctx.file(d.Src1File).Ready(d.PSrc1, c.now) {
		return false // store data not produced yet
	}
	// The probe mutates memory-system counters even when rejected, so a
	// cycle that reaches it is never skippable.
	c.progressed = true
	res := c.mem.StoreCommit(d.Addr)
	if !res.OK {
		return false // port or MSHR pressure: retry next cycle
	}
	// The SAQ is FIFO in program order and stores graduate in program
	// order, so the head must be this store.
	head, ok := ctx.SAQ.Pop()
	if !ok || head != d {
		panic("core: SAQ out of sync with ROB")
	}
	return true
}

// ----------------------------------------------------------------------------
// Cache access for loads.

// cacheAccess sends issued loads to the data cache in age order per
// thread, with round-robin priority across threads. A load first checks
// the SAQ for an older store to an overlapping address: with forwarding
// enabled it takes the store's data once ready; otherwise it waits until
// the store has committed (the paper's SAQ only lets loads bypass
// *non-conflicting* stores).
func (c *Core) cacheAccess() {
	t := c.rotStart()
	for k := 0; k < len(c.ctxs); k++ {
		ctx := c.ctxs[t]
		t = c.rotNext(t)
		if len(ctx.PendingAccess) == 0 {
			continue
		}
		keep := ctx.PendingAccess[:0]
		blocked := false // once one access is rejected, keep age order
		for _, d := range ctx.PendingAccess {
			if blocked || d.AccessAt > c.now {
				keep = append(keep, d)
				continue
			}
			switch c.tryLoad(ctx, d) {
			case loadDone:
				// dropped from pending
			case loadRetry:
				keep = append(keep, d)
				blocked = true
			}
		}
		ctx.PendingAccess = keep
	}
}

type loadOutcome uint8

const (
	loadDone loadOutcome = iota
	loadRetry
	// loadProbe is internal to tryLoad: no SAQ decision was reached and
	// the load proceeds to the cache probe.
	loadProbe
)

// tryLoad attempts one load's cache access.
func (c *Core) tryLoad(ctx *Context, d *DynInst) loadOutcome {
	// Older conflicting store in the SAQ? (All older stores have computed
	// their addresses: the AP issues in order, so any store still awaiting
	// its address is younger than d.)
	outcome := loadProbe
	ctx.SAQ.Scan(func(st *DynInst) bool {
		if st.Seq >= d.Seq {
			return false // SAQ is in program order; the rest are younger
		}
		if !st.Issued || c.now < st.AccessAt {
			return true // address not known yet; store is younger in AP order anyway
		}
		if !overlaps(d, st) {
			return true
		}
		if c.cfg.StoreForwarding && ctx.file(st.Src1File).Ready(st.PSrc1, c.now) {
			// Forward the store data to the load.
			c.completeLoad(ctx, d, c.now+1, false)
			c.col.StoreForwards++
			outcome = loadDone
			return false
		}
		c.col.LoadConflictStalls++
		outcome = loadRetry
		return false
	})
	if outcome != loadProbe {
		return outcome
	}
	// The probe mutates memory-system counters even when rejected, so a
	// cycle that reaches it is never skippable.
	c.progressed = true
	res := c.mem.Load(d.Addr)
	if !res.OK {
		if res.Stall == mem.StallMSHR {
			// The load is queued behind a full MSHR file: it will almost
			// certainly miss. Mark its destination now so consumers
			// blocked on it are classified (and sampled) as memory
			// stalls rather than FU stalls.
			if !ctx.Meta[d.DestFile][d.PDest].MissedLoad {
				ctx.Meta[d.DestFile][d.PDest] = regMeta{MissedLoad: true}
			}
		}
		return loadRetry
	}
	c.completeLoad(ctx, d, res.ReadyAt, res.Miss)
	return loadDone
}

// completeLoad records a load's data delivery time and, for misses, the
// per-register metadata driving stall classification and the
// perceived-latency samples.
func (c *Core) completeLoad(ctx *Context, d *DynInst, readyAt int64, miss bool) {
	c.progressed = true
	d.Sent = true
	d.Missed = miss
	d.DoneAt = readyAt
	ctx.file(d.DestFile).SetReadyAt(d.PDest, readyAt)
	if miss {
		// Preserve the Sampled flag: a consumer may already have flushed
		// its sample while the access was queued on a full MSHR file.
		ctx.Meta[d.DestFile][d.PDest].MissedLoad = true
	}
}

// overlaps reports whether a load and a store touch overlapping bytes.
func overlaps(ld, st *DynInst) bool {
	ls, le := ld.Addr, ld.Addr+uint64(ld.Size)
	ss, se := st.Addr, st.Addr+uint64(st.Size)
	return ls < se && ss < le
}

// ----------------------------------------------------------------------------
// Dispatch.

// dispatch renames and steers instructions from the fetch buffers into
// the issue queues, round-robin across threads, up to DispatchWidth per
// cycle, stopping a thread at its first unavailable resource (in-order
// dispatch with back-pressure).
func (c *Core) dispatch() {
	budget := c.cfg.DispatchWidth
	t := c.rotStart()
	for k := 0; k < len(c.ctxs) && budget > 0; k++ {
		ctx := c.ctxs[t]
		t = c.rotNext(t)
		for budget > 0 {
			d, ok := ctx.FetchBuf.Peek()
			if !ok {
				break
			}
			if !c.tryDispatch(ctx, d) {
				c.col.DispatchStalls++
				break
			}
			ctx.FetchBuf.Pop()
			c.progressed = true
			budget--
		}
	}
}

// tryDispatch allocates every resource the instruction needs; on any
// shortage it leaves the machine untouched and reports failure.
func (c *Core) tryDispatch(ctx *Context, d *DynInst) bool {
	if ctx.ROB.Full() {
		return false
	}
	var q = ctx.APQ
	if d.Unit == isa.EP {
		q = ctx.EPQ
	}
	if q.Full() {
		return false
	}
	if d.IsStore() && ctx.SAQ.Full() {
		return false
	}
	destFile := d.DestFile
	if d.Dest.Valid() && ctx.file(destFile).FreeCount() == 0 {
		return false
	}
	// All resources available: rename.
	if d.Src1.Valid() {
		d.Src1File = isa.RegUnit(d.Src1)
		d.PSrc1 = ctx.Map.Get(d.Src1)
	}
	if d.Src2.Valid() {
		d.Src2File = isa.RegUnit(d.Src2)
		d.PSrc2 = ctx.Map.Get(d.Src2)
	}
	if d.Dest.Valid() {
		p, ok := ctx.file(destFile).Alloc()
		if !ok {
			panic("core: register file exhausted after FreeCount check")
		}
		d.PDest = p
		d.POld = ctx.Map.Set(d.Dest, p)
		ctx.Meta[destFile][p] = regMeta{}
	}
	ctx.ROB.Push(d)
	q.Push(d)
	if d.IsStore() {
		ctx.SAQ.Push(d)
	}
	return true
}

// ----------------------------------------------------------------------------
// Fetch.

// fetch brings instructions from the per-thread sources into the fetch
// buffers: up to FetchThreads threads per cycle (chosen by ICOUNT or
// round-robin), up to FetchWidth consecutive instructions each, stopping
// at a predicted-taken branch, a full buffer, the control-speculation
// limit, or a misprediction (which freezes the thread until resolution).
func (c *Core) fetch() {
	c.fetchPick = c.fetchPick[:0]
	rot := c.rotStart()
	for k := 0; k < len(c.ctxs); k++ {
		t := rot
		rot = c.rotNext(rot)
		ctx := c.ctxs[t]
		if ctx.FetchBlocked != nil || c.now < ctx.FetchResumeAt || ctx.FetchBuf.Full() {
			continue
		}
		if _, ok := ctx.peekSource(); !ok {
			continue
		}
		c.fetchPick = append(c.fetchPick, t)
	}
	if c.cfg.FetchPolicy != config.FetchRoundRobin {
		// ICOUNT: fewest instructions pending dispatch first. Stable
		// insertion sort over the rotated order keeps ties round-robin.
		p := c.fetchPick
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && c.ctxs[p[j]].FetchBuf.Len() < c.ctxs[p[j-1]].FetchBuf.Len(); j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
	}
	n := c.cfg.FetchThreads
	if n > len(c.fetchPick) {
		n = len(c.fetchPick)
	}
	for _, t := range c.fetchPick[:n] {
		c.fetchThread(c.ctxs[t])
	}
	// Fetch is the one rotation-sensitive stage: an eligible thread left
	// unpicked this cycle (FetchThreads limit) whose head is actually
	// fetchable will be picked within the next few rotations, so the
	// following cycles are not identical to this one even if nothing else
	// happens — forbid skipping. A thread whose head is a branch at the
	// speculation limit stays unfetchable until a resolution event and
	// does not block fast-forwarding.
	for _, t := range c.fetchPick[n:] {
		ctx := c.ctxs[t]
		if in, ok := ctx.peekSource(); ok &&
			!(in.IsBranch() && ctx.Unresolved >= c.cfg.MaxUnresolvedBranches) {
			c.progressed = true
			return
		}
	}
}

// fetchThread fetches up to FetchWidth instructions for one thread.
func (c *Core) fetchThread(ctx *Context) {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if ctx.FetchBuf.Full() {
			return
		}
		in, ok := ctx.peekSource()
		if !ok {
			return
		}
		if in.IsBranch() && ctx.Unresolved >= c.cfg.MaxUnresolvedBranches {
			return // speculation limit: leave the branch for later
		}
		d := ctx.alloc()
		d.Inst = *in
		ctx.consumeSource()
		d.FetchedAt = c.now
		d.Thread = ctx.ID
		d.Seq = ctx.NextSeq
		ctx.NextSeq++
		d.Unit = isa.Steer(&d.Inst)
		d.DestFile = isa.DestUnit(&d.Inst)
		ctx.FetchBuf.Push(d)
		c.progressed = true
		c.col.FetchedInsts++

		if d.IsBranch() {
			ctx.Unresolved++
			ctx.unresolvedBranches = append(ctx.unresolvedBranches, d)
			predicted := ctx.Pred.Predict(d.PC)
			ctx.Pred.Update(d.PC, d.Taken)
			if predicted != d.Taken {
				d.Mispredicted = true
				ctx.FetchBlocked = d
				return // wrong path from here: freeze until resolution
			}
			if d.Taken {
				return // fetch stops at a (correctly) predicted-taken branch
			}
		}
	}
}
