package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CMP composes N cores — each a complete SMT decoupled processor with
// its own contexts, issue logic and private L1 — over a shared memory
// fabric (mem.Interconnect). The cores tick in lockstep, in fixed index
// order within each cycle, so shared-level arbitration is
// first-come-first-served by core index: a deliberate, documented bias
// that makes every run bit-reproducible and independent of GOMAXPROCS
// (the whole machine advances on one goroutine).
//
// Fast-forward generalizes from the single core: a cycle in which no
// core made progress is provably identical to every following cycle up
// to the earliest event scheduled on ANY core's calendar — shared-level
// fills are broadcast into every calendar — so the CMP skips to the
// minimum over the per-core next events and bulk-replays each core's
// constant per-cycle accounting.
type CMP struct {
	cfg   config.Machine
	ic    *mem.Interconnect
	cores []*Core

	// progressed reports whether the last Tick changed any machine state
	// (any core progressed, or a shared/private lower level installed a
	// line).
	progressed bool
}

// NewCMP builds an n-core machine for configuration m (Cores × Threads
// contexts) with one instruction source per context, core-major:
// sources[c*Threads+t] feeds core c's context t.
func NewCMP(m config.Machine, sources []trace.Reader) (*CMP, error) {
	m = m.Effective()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.CoreCount()
	if len(sources) != m.TotalContexts() {
		return nil, fmt.Errorf("core: %d sources for %d cores × %d contexts",
			len(sources), n, m.Threads)
	}
	ic, err := mem.NewInterconnect(m.Mem, n)
	if err != nil {
		return nil, err
	}
	p := &CMP{cfg: m, ic: ic}
	for c := 0; c < n; c++ {
		co, err := newCore(m, sources[c*m.Threads:(c+1)*m.Threads], ic.System(c))
		if err != nil {
			return nil, err
		}
		p.cores = append(p.cores, co)
	}
	// Shared (or private-L2) fills are events for every core: the level's
	// MSHR frees and its tags change at that cycle, which can unblock any
	// core's rejected accesses. Broadcasting into all calendars keeps the
	// fast-forward invariant: the machine ticks at every cycle its state
	// can change.
	ic.SetFillScheduler(func(at int64) {
		for _, co := range p.cores {
			co.cal.schedule(co.now, at)
		}
	})
	return p, nil
}

// Config returns the effective machine configuration (Cores set).
func (p *CMP) Config() config.Machine { return p.cfg }

// Cores returns the number of cores.
func (p *CMP) Cores() int { return len(p.cores) }

// Core returns core c (for tests and reports).
func (p *CMP) Core(c int) *Core { return p.cores[c] }

// Interconnect returns the shared memory fabric.
func (p *CMP) Interconnect() *mem.Interconnect { return p.ic }

// Now returns the current cycle (identical across the lockstep cores).
func (p *CMP) Now() int64 { return p.cores[0].now }

// SkippedCycles returns how many cycles Step fast-forwarded over
// (machine-level: the lockstep cores always skip together).
func (p *CMP) SkippedCycles() int64 { return p.cores[0].skippedCycles }

// Graduated sums instructions retired across all cores in the current
// window.
func (p *CMP) Graduated() int64 {
	var g int64
	for _, co := range p.cores {
		g += co.col.Graduated
	}
	return g
}

// Done reports whether every core has drained.
func (p *CMP) Done() bool {
	for _, co := range p.cores {
		if !co.Done() {
			return false
		}
	}
	return true
}

// Tick advances the whole machine by one cycle: the shared fabric
// first (lines install below before any core can request them this
// cycle — the same bottom-up order the single-core System uses), then
// each core in index order.
func (p *CMP) Tick() {
	now := p.cores[0].now + 1
	p.progressed = p.ic.BeginCycle(now) > 0
	for _, co := range p.cores {
		co.Tick()
		if co.progressed {
			p.progressed = true
		}
	}
}

// Step advances by at least one cycle, fast-forwarding over stretches
// in which no core can make progress: the skip target is the earliest
// event on any core's calendar, and each core bulk-replays its own
// constant per-cycle accounting — bit-identical to ticking, which the
// CMP equivalence tests enforce.
func (p *CMP) Step(horizon int64) {
	p.Tick()
	if p.progressed || p.Now() >= horizon {
		return
	}
	end := horizon
	for _, co := range p.cores {
		if e := co.nextEventAt() - 1; e < end {
			end = e
		}
	}
	if p.ic.EpochMode() {
		// Epoch mode reroutes shared-chain fills from the per-core
		// calendar broadcast to the interconnect's own calendar; clamp
		// the skip so the serial stretches between epochs still tick at
		// every cycle a shared level installs a line.
		if at, ok := p.ic.NextSharedFillAt(); ok && at-1 < end {
			end = at - 1
		}
	}
	if end > p.Now() && !p.Done() {
		k := end - p.Now()
		for _, co := range p.cores {
			co.fastForward(k)
		}
	}
}

// ResetStats clears every core's collector and L1 counters and the
// shared fabric's level counters (machine state — caches, queues,
// in-flight instructions — carries over): the warm-up/measurement
// boundary.
func (p *CMP) ResetStats() {
	for _, co := range p.cores {
		co.col.Reset()
		co.mem.ResetStats()
	}
	p.ic.ResetStats()
}

// Report assembles the measurement-window report: collector counters
// and L1 stats aggregated over the cores (fixed core order, so the
// float waste buckets are deterministic), per-core retirement, and
// MemLevels listing each core's private L1 (with its coherence
// counters) ahead of the interconnect-owned shared or private levels.
func (p *CMP) Report() stats.Report {
	end := p.Now()
	col := p.cores[0].col
	for _, co := range p.cores[1:] {
		col.MergeCore(&co.col)
	}
	window := col.Cycles
	var ms mem.Stats
	var busUtil float64
	perCore := make([]int64, len(p.cores))
	levels := make([]mem.LevelStats, 0, len(p.cores))
	for c, co := range p.cores {
		perCore[c] = co.col.Graduated
		ms.Merge(co.mem.Stats())
		busUtil += co.mem.Bus().Utilization(end, window)
		levels = append(levels, co.mem.L1LevelStats(end, window))
	}
	levels = append(levels, p.ic.LevelStats(end, window)...)
	return stats.Report{
		Collector:        col,
		Mem:              ms,
		BusUtilization:   busUtil / float64(len(p.cores)),
		Threads:          p.cfg.Threads,
		Decoupled:        p.cfg.Decoupled,
		L2Latency:        p.cfg.Mem.L2Latency,
		MemLevels:        levels,
		Cores:            len(p.cores),
		PerCoreGraduated: perCore,
	}
}
