package core

// This file implements the machinery behind sampled execution: draining
// the pipeline to a clean architectural boundary, and the functional
// warp that advances trace cursors, branch-predictor state and the cache
// footprint across a sampling gap without simulating any timing.

// drainMaxCycles bounds a pipeline drain as a deadlock guard; real
// drains finish within queue depths × memory latencies, orders of
// magnitude sooner.
const drainMaxCycles = 1 << 20

// PipelineEmpty reports whether every context's pipeline state has
// drained: nothing fetched awaiting dispatch, nothing in flight in the
// ROB, no store awaiting commit. (An empty ROB implies the issue queues
// and issued-branch list are empty too — every dispatched instruction
// sits in the ROB until it graduates.)
func (c *Core) PipelineEmpty() bool {
	for _, ctx := range c.ctxs {
		if ctx.FetchBuf.Len() > 0 || ctx.ROB.Len() > 0 || ctx.SAQ.Len() > 0 {
			return false
		}
	}
	return true
}

// DrainPipeline freezes fetch and ticks the machine until the pipeline
// has emptied and the memory system has no miss in flight — the clean
// boundary the functional warp resumes from — then unfreezes fetch. It
// reports whether the drain completed within the cycle guard. The
// drained cycles are simulated normally and land in the current
// statistics window; the sampling driver resets statistics afterwards.
func (c *Core) DrainPipeline() bool {
	c.fetchFrozen = true
	limit := c.now + drainMaxCycles
	for !(c.PipelineEmpty() && c.mem.Quiescent()) && c.now < limit {
		c.Tick()
	}
	c.fetchFrozen = false
	return c.PipelineEmpty() && c.mem.Quiescent()
}

// warpRound advances at most one instruction per context (round-robin
// fairness, mirroring fetch's rotation) up to n total, returning how
// many were consumed. Exhausted contexts are skipped.
func (c *Core) warpRound(n int64) int64 {
	var done int64
	for _, ctx := range c.ctxs {
		if done >= n {
			break
		}
		in, ok := ctx.peekSource()
		if !ok {
			continue
		}
		if in.IsBranch() {
			// Train the predictor exactly as fetch would (fetch updates at
			// fetch time, in architectural order), so prediction accuracy
			// carries across the gap.
			ctx.Pred.Update(in.PC, in.Taken)
		} else if in.IsMem() {
			c.mem.Warm(in.Addr, in.IsStore())
		}
		ctx.consumeSource()
		done++
	}
	return done
}

// Warp advances architectural state by up to n instructions without any
// timing: trace cursors move, branch predictors train, and the memory
// footprint warms the caches functionally. Simulated time does not
// advance and no statistics change. It returns the number of
// instructions consumed, which falls short of n only when every source
// runs dry. Call only on a drained pipeline (DrainPipeline).
//
// The speculative-DAE extension is a timing model (squash penalties and
// LoD fetch holds) and is deliberately not applied across a warp: the
// warped instructions' speculative prefetches coincide with their own
// functional warming, and the per-context LoD countdown simply does not
// advance. Sampled-mode runs therefore estimate a machine whose gaps
// are speculation-free; exact and adaptive runs model every event.
func (c *Core) Warp(n int64) int64 {
	var done int64
	for done < n {
		k := c.warpRound(n - done)
		if k == 0 {
			break
		}
		done += k
	}
	return done
}

// DrainPipeline is the CMP drain: fetch freezes on every core and the
// lockstep machine ticks until all pipelines and memory systems are
// quiet.
func (p *CMP) DrainPipeline() bool {
	for _, co := range p.cores {
		co.fetchFrozen = true
	}
	limit := p.Now() + drainMaxCycles
	for !p.drained() && p.Now() < limit {
		p.Tick()
	}
	for _, co := range p.cores {
		co.fetchFrozen = false
	}
	return p.drained()
}

func (p *CMP) drained() bool {
	for _, co := range p.cores {
		if !co.PipelineEmpty() || !co.mem.Quiescent() {
			return false
		}
	}
	return true
}

// Warp is the CMP functional warp: each round visits every core in index
// order, one instruction per context — the same deterministic
// interleaving lockstep ticking gives the detailed machine.
func (p *CMP) Warp(n int64) int64 {
	var done int64
	for done < n {
		var round int64
		for _, co := range p.cores {
			if done+round >= n {
				break
			}
			round += co.warpRound(n - done - round)
		}
		if round == 0 {
			break
		}
		done += round
	}
	return done
}
