package core

import (
	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/stats"
)

// Never is a cycle count beyond any simulation horizon, used for event
// times that are not yet known (e.g. a load's completion before the cache
// has accepted it). It aliases the register files' sentinel so the two
// never diverge.
const Never = regfile.NeverReady

// DynInst is one in-flight dynamic instruction. Instances are pooled per
// context and recycled at graduation.
type DynInst struct {
	isa.Inst

	// Thread is the owning hardware context.
	Thread int
	// Seq is the per-thread program order number (dense, starting at 0).
	Seq int64
	// Unit is the processing unit the instruction issues in (steering).
	Unit isa.Unit
	// DestFile is the unit whose register file hosts the destination
	// (isa.DestUnit, computed once at fetch).
	DestFile isa.Unit

	// PDest is the renamed destination register (in DestUnit's file), or
	// regfile.None.
	PDest regfile.PhysReg
	// POld is the destination's previous mapping, freed at graduation.
	POld regfile.PhysReg
	// PSrc1 and PSrc2 are the renamed sources (regfile.None when absent).
	PSrc1, PSrc2 regfile.PhysReg
	// Src1File and Src2File identify which unit's file hosts each source.
	Src1File, Src2File isa.Unit

	// FetchedAt is the cycle the instruction was fetched (used by the
	// oldest-first issue policy).
	FetchedAt int64
	// Issued marks that the instruction left its issue queue.
	Issued bool
	// IssueAt is the issue cycle.
	IssueAt int64
	// DoneAt is the cycle the result is complete: IssueAt+latency for ALU
	// ops and branches, the data-return cycle for loads, Never while
	// unknown. Stores use addr/data state instead (see graduate).
	DoneAt int64

	// AccessAt is the earliest cycle a load/store may probe the cache
	// (address available, one AP latency after issue).
	AccessAt int64
	// Sent marks that the memory system accepted the access.
	Sent bool
	// Missed marks that the access missed in L1.
	Missed bool

	// Mispredicted marks a branch whose predicted direction was wrong;
	// the thread's fetch is stalled until it resolves.
	Mispredicted bool

	// StallUntil caches the earliest cycle a blocked stream head could
	// become issuable, with StallReason the waste classification that
	// holds until then. classify consults the cache instead of re-probing
	// the register files; it is only set when the blocking operand's
	// delivery time is known (so the classification provably cannot
	// change earlier).
	StallUntil  int64
	StallReason stats.WasteReason

	// MemStall counts cycles this instruction sat at the head of its
	// issue stream blocked on the operand in BlockPhys while issue slots
	// were available — the raw material of the perceived-latency metric.
	MemStall int64
	// BlockPhys/BlockFile identify the missed-load operand currently
	// blocking this instruction (regfile.None when none).
	BlockPhys regfile.PhysReg
	BlockFile isa.Unit
}

// reset clears a pooled DynInst for reuse. The whole-struct zero is a
// single memclr; the non-zero sentinels are written individually (a
// composite literal with non-zero fields would build a stack temporary
// and block-copy it, which is measurably slower on this hot path).
func (d *DynInst) reset() {
	*d = DynInst{}
	d.PDest = regfile.None
	d.POld = regfile.None
	d.PSrc1 = regfile.None
	d.PSrc2 = regfile.None
	d.BlockPhys = regfile.None
	d.DoneAt = Never
	d.AccessAt = Never
}

// The per-physical-register classification flags (missed-load marking
// and perceived-latency sampling state) live in regfile.Entry, merged
// with the register's ready time so the issue stage's operand check and
// the sampling that follows share one cache line.
