package core

// White-box tests for the fast-forward scheduler's edge cases. The broad
// stepped-vs-fast equivalence over the paper's figure configurations
// lives in internal/sim (equiv_test.go); these tests pin down the corner
// behaviours with hand-built traces: draining inside a skippable stretch,
// a cycle cap landing inside a skipped interval, and an all-miss
// single-thread stream (the deepest-stall case).

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// highLatency returns a single-thread Figure-2 machine with a 256-cycle
// L2, the regime where most cycles are skippable.
func highLatency() config.Machine {
	return config.Figure2(1).WithL2Latency(256)
}

// runPair runs the same machine and trace through Run and RunStepped and
// requires identical results; it returns the fast core for further
// assertions.
func runPair(t *testing.T, m config.Machine, insts []isa.Inst, maxCycles int64) (*Core, *Core) {
	t.Helper()
	fast, err := New(m, []trace.Reader{trace.Slice(insts)})
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := New(m, []trace.Reader{trace.Slice(insts)})
	if err != nil {
		t.Fatal(err)
	}
	fc, fd := fast.Run(maxCycles)
	sc, sd := stepped.RunStepped(maxCycles)
	if fc != sc || fd != sd {
		t.Fatalf("run mismatch: fast (%d cycles, drained=%v) vs stepped (%d, %v)", fc, fd, sc, sd)
	}
	if *fast.Collector() != *stepped.Collector() {
		t.Fatalf("collector mismatch:\nfast:    %+v\nstepped: %+v", *fast.Collector(), *stepped.Collector())
	}
	if fast.Now() != stepped.Now() {
		t.Fatalf("clock mismatch: %d vs %d", fast.Now(), stepped.Now())
	}
	return fast, stepped
}

// missTrace builds n chains of [missing load -> dependent FP op], each
// load to a fresh 32-byte line far beyond the previous (every access a
// primary miss) with the consumer immediately behind it (no independent
// work to hide the latency).
func missTrace(n int) []isa.Inst {
	var insts []isa.Inst
	for i := 0; i < n; i++ {
		addr := uint64(0x100000 + i*4096)
		insts = append(insts,
			fpLoad(0x40, 8, 1, addr),
			fpOp(0x44, 0, 0, 8),
		)
	}
	return insts
}

// TestFastForwardDoneDuringSkip drains the machine off the tail of a
// skippable stall: after the last load is in flight nothing can happen
// until its refill, and the machine is done shortly after. The skip must
// neither overshoot the drain point nor change any statistic.
func TestFastForwardDoneDuringSkip(t *testing.T) {
	fast, _ := runPair(t, highLatency(), missTrace(1), 1_000_000)
	if fast.SkippedCycles() == 0 {
		t.Fatal("expected the load's miss latency to be skipped")
	}
	if !fast.Done() {
		t.Fatal("machine did not drain")
	}
}

// TestFastForwardMaxCyclesInsideSkip lands the cycle cap inside a
// skipped interval: the fast run must stop on exactly the capped cycle
// with exactly the accounting stepping produces.
func TestFastForwardMaxCyclesInsideSkip(t *testing.T) {
	for _, maxCycles := range []int64{10, 40, 100, 200} {
		fast, _ := runPair(t, highLatency(), missTrace(1), maxCycles)
		if fast.Done() {
			t.Fatalf("maxCycles=%d: machine unexpectedly drained", maxCycles)
		}
		if got := fast.Now(); got != maxCycles {
			t.Fatalf("maxCycles=%d: stopped at cycle %d", maxCycles, got)
		}
		if got := fast.Collector().Cycles; got != maxCycles {
			t.Fatalf("maxCycles=%d: collector counted %d cycles", maxCycles, got)
		}
	}
}

// TestFastForwardAllMissSingleThread is the all-miss stress in both
// shapes. Independent misses overlap in the lockup-free cache, so fills
// land every few bus cycles and events stay dense (few long skips);
// a serial gather chain — every load's address depends on the previous
// load's data — exposes the full L2 latency between events and must be
// mostly skipped. Both must match stepping bit for bit.
func TestFastForwardAllMissSingleThread(t *testing.T) {
	// Independent misses: equivalence under dense fill events.
	fast, _ := runPair(t, highLatency(), missTrace(40), 1_000_000)
	col := fast.Collector()
	if col.Graduated != 80 {
		t.Fatalf("graduated %d, want 80", col.Graduated)
	}
	// Sanity: the stalls were charged to memory waste, not idle/FU.
	if col.Slots[isa.EP].Wasted[1] == 0 { // stats.WasteMem
		t.Fatal("no memory-wait slots recorded on the EP")
	}

	// Serial gather chain: each load consumes the previous one's result.
	var chain []isa.Inst
	for i := 0; i < 40; i++ {
		chain = append(chain,
			intLoad(0x60, 13, 13, uint64(0x400000+i*4096)),
			intOp(0x64, 5, 13, 13),
		)
	}
	fast, _ = runPair(t, highLatency(), chain, 1_000_000)
	col = fast.Collector()
	if frac := float64(fast.SkippedCycles()) / float64(col.Cycles); frac < 0.5 {
		t.Fatalf("skipped only %.0f%% of a serial all-miss chain", 100*frac)
	}
}

// TestFastForwardBranchMispredictStall covers skips bounded by branch
// resolution and the post-redirect fetch resume: a mispredict-heavy
// trace must stay bit-identical under fast-forwarding.
func TestFastForwardBranchMispredictStall(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 300; i++ {
		insts = append(insts,
			intLoad(0x10, 13, 1, uint64(0x200000+i*4096)),
			intOp(0x14, 5, 13, 13),    // consume the missing load
			brInst(0x18, 5, i%2 == 0), // alternating, BHT-hostile
		)
	}
	runPair(t, highLatency(), insts, 2_000_000)
}

// TestFastForwardBeyondWheelWindow stresses the calendar's far-overflow
// path: an L2 latency larger than the timing wheel's span (calWindow
// cycles) sends every refill event through the overflow heap, and the
// serial gather chain forces skips longer than one whole wheel
// revolution. Everything must stay bit-identical to stepping.
func TestFastForwardBeyondWheelWindow(t *testing.T) {
	m := config.Figure2(1).WithL2Latency(calWindow + 1000)
	m.ScaleWithLatency = false // keep the machine itself at baseline size
	var chain []isa.Inst
	for i := 0; i < 12; i++ {
		chain = append(chain,
			intLoad(0x60, 13, 13, uint64(0x500000+i*4096)),
			intOp(0x64, 5, 13, 13),
		)
	}
	fast, _ := runPair(t, m, chain, 10_000_000)
	if frac := float64(fast.SkippedCycles()) / float64(fast.Collector().Cycles); frac < 0.9 {
		t.Fatalf("skipped only %.0f%% despite a %d-cycle L2", 100*frac, calWindow+1000)
	}
}

// TestFastForwardRedirectCancelsEvents pins the stale-event behaviour:
// a mispredicted branch freezes fetch while older instructions' events
// (register deliveries, access times) are already in the calendar; the
// redirect then re-schedules fetch. Cancelled/overtaken events may wake
// the machine spuriously but must never change a statistic. The trace
// alternates mispredicting branches with long-latency misses so
// resolution, redirect and refill events interleave in the calendar.
func TestFastForwardRedirectCancelsEvents(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 120; i++ {
		insts = append(insts,
			intLoad(0x30, 13, 1, uint64(0x600000+i*4096)),
			brInst(0x34, 13, i%3 == 0), // depends on the missing load
			intOp(0x38, 5, 13, 13),
		)
	}
	fast, _ := runPair(t, highLatency(), insts, 2_000_000)
	if fast.Collector().Mispredicts == 0 {
		t.Fatal("trace produced no mispredicts; the scenario is vacuous")
	}
	if fast.SkippedCycles() == 0 {
		t.Fatal("nothing was skipped; the scenario is vacuous")
	}
}

// TestFastForwardSpeculation runs the speculative-DAE extension through
// the equivalence harness: squash freezes land in the calendar, LoD
// fetch holds replay their per-cycle stall counter through skips, and
// the whole run must stay bit-identical to stepping. The trace mixes
// missing loads, FP consumers (so the EPQ is non-empty when LoD events
// fire) and mispredict-prone branches.
func TestFastForwardSpeculation(t *testing.T) {
	m := highLatency().WithSpeculation(config.Speculation{
		SpecLoadFrac: 0.5,
		MisspecProb:  0.3,
		LoDEvery:     25,
	})
	var insts []isa.Inst
	for i := 0; i < 250; i++ {
		base := uint64(0x700000 + i*4096)
		insts = append(insts,
			fpLoad(0x50, 8, 1, base),
			fpOp(0x54, 0, 0, 8),
			intLoad(0x58, 13, 1, base+64),
			brInst(0x5c, 13, i%3 == 0),
		)
	}
	fast, _ := runPair(t, m, insts, 2_000_000)
	col := fast.Collector()
	if col.SpeculativeLoads == 0 || col.Squashes == 0 || col.LoDStalls == 0 {
		t.Fatalf("speculation scenario vacuous: %+v", struct{ S, Q, L int64 }{
			col.SpeculativeLoads, col.Squashes, col.LoDStalls})
	}
	if fast.SkippedCycles() == 0 {
		t.Fatal("nothing was skipped; the scenario is vacuous")
	}
}

// TestFastForwardStoreConflictStall covers the load-behind-conflicting-
// store retry path, whose per-cycle conflict counter must replay exactly
// during skips (the store's data arrives from a missing load).
func TestFastForwardStoreConflictStall(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 50; i++ {
		base := uint64(0x300000 + i*4096)
		insts = append(insts,
			fpLoad(0x20, 8, 1, base),      // misses; produces store data
			fpStore(0x24, 8, 2, base+512), // waits on the load's data
			fpLoad(0x28, 9, 1, base+512),  // conflicts with the store
			fpOp(0x2c, 0, 0, 9),
		)
	}
	runPair(t, highLatency(), insts, 2_000_000)
}
