package core_test

import (
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// cmpMachine is the canonical small CMP for these tests: cores × 2
// contexts over a 256 KB shared L2 and DRAM.
func cmpMachine(cores int) config.Machine {
	return config.Figure2(2).
		WithCores(cores).
		WithHierarchy(64, config.SharedL2(256<<10, 8))
}

func cmpSources(m config.Machine) []trace.Reader {
	return workload.MixSources(m.TotalContexts(), workload.MixOpts{})
}

func TestNewCMPValidation(t *testing.T) {
	m := cmpMachine(2)
	if _, err := core.NewCMP(m, workload.MixSources(m.Threads, workload.MixOpts{})); err == nil {
		t.Error("per-core context count accepted; NewCMP needs cores*threads sources")
	}
	if _, err := core.NewCMP(m, nil); err == nil {
		t.Error("nil sources accepted")
	}
	bad := m
	bad.Threads = 0
	if _, err := core.NewCMP(bad, cmpSources(m)); err == nil {
		t.Error("invalid machine accepted")
	}
}

// TestCMPLockstep: the cores share one clock; each Tick advances all of
// them together.
func TestCMPLockstep(t *testing.T) {
	m := cmpMachine(2)
	p, err := core.NewCMP(m, cmpSources(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Tick()
	}
	if p.Now() != 100 {
		t.Fatalf("Now() = %d after 100 ticks", p.Now())
	}
	for c := 0; c < p.Cores(); c++ {
		if got := p.Core(c).Now(); got != 100 {
			t.Fatalf("core %d clock = %d, want 100 (lockstep)", c, got)
		}
	}
	rep := p.Report()
	if rep.Cores != 2 {
		t.Fatalf("Report.Cores = %d", rep.Cores)
	}
	if len(rep.PerCoreGraduated) != 2 {
		t.Fatalf("PerCoreGraduated = %v", rep.PerCoreGraduated)
	}
	var sum int64
	for _, g := range rep.PerCoreGraduated {
		sum += g
	}
	if sum != p.Graduated() || sum != rep.Graduated {
		t.Fatalf("graduated: per-core sum %d, Graduated() %d, report %d",
			sum, p.Graduated(), rep.Graduated)
	}
}

// TestCMPDeterminism: two identical multi-core runs produce byte-equal
// reports.
func TestCMPDeterminism(t *testing.T) {
	run := func() []byte {
		m := cmpMachine(2)
		p, err := core.NewCMP(m, cmpSources(m))
		if err != nil {
			t.Fatal(err)
		}
		for p.Graduated() < 20_000 && !p.Done() {
			p.Step(1 << 50)
		}
		b, err := json.Marshal(p.Report())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("CMP run not deterministic:\n%s\n%s", a, b)
	}
}

// TestCMPStepMatchesTick: fast-forwarding the whole chip is invisible —
// the stepped and skipping schedulers produce identical reports and
// clocks, for both the shared and the private hierarchy.
func TestCMPStepMatchesTick(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    config.Machine
	}{
		// One context per core: a single miss stream leaves skippable
		// stretches, so the fast path actually engages.
		{"sharedL2", config.Figure2(1).WithCores(2).
			WithHierarchy(64, config.SharedL2(256<<10, 8))},
		{"privateL2", config.Figure2(1).WithCores(2).
			WithHierarchy(64, config.SharedL2(64<<10, 8)).WithPrivateHierarchy()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const insts = 10_000
			run := func(stepped bool) (json.RawMessage, int64, int64) {
				p, err := core.NewCMP(tc.m, cmpSources(tc.m))
				if err != nil {
					t.Fatal(err)
				}
				for p.Graduated() < insts && !p.Done() {
					if stepped {
						p.Tick()
					} else {
						p.Step(1 << 50)
					}
				}
				b, err := json.Marshal(p.Report())
				if err != nil {
					t.Fatal(err)
				}
				return b, p.Now(), p.SkippedCycles()
			}
			fast, fastNow, skipped := run(false)
			slow, slowNow, _ := run(true)
			if string(fast) != string(slow) {
				t.Fatalf("fast-forward changed the report:\nfast:    %s\nstepped: %s", fast, slow)
			}
			if fastNow != slowNow {
				t.Fatalf("clock mismatch: fast %d, stepped %d", fastNow, slowNow)
			}
			if skipped == 0 {
				t.Error("fast-forward never skipped a cycle (test is vacuous)")
			}
		})
	}
}

// TestCMPResetStats: the measurement boundary zeroes every core's
// collector and the fabric's counters but preserves the clock.
func TestCMPResetStats(t *testing.T) {
	m := cmpMachine(2)
	p, err := core.NewCMP(m, cmpSources(m))
	if err != nil {
		t.Fatal(err)
	}
	for p.Graduated() < 5_000 && !p.Done() {
		p.Step(1 << 50)
	}
	now := p.Now()
	p.ResetStats()
	if p.Graduated() != 0 {
		t.Fatalf("Graduated() = %d after reset", p.Graduated())
	}
	if p.Now() != now {
		t.Fatalf("reset moved the clock: %d -> %d", now, p.Now())
	}
	rep := p.Report()
	for _, lv := range rep.MemLevels {
		if lv.Name == "" {
			t.Fatal("reset dropped a level name")
		}
		if lv.Accesses != 0 {
			t.Fatalf("level %s has %d accesses after reset", lv.Name, lv.Accesses)
		}
	}
	// The chip still runs after the boundary.
	for p.Graduated() < 5_000 && !p.Done() {
		p.Step(1 << 50)
	}
	if p.Graduated() < 5_000 {
		t.Fatal("CMP stalled after ResetStats")
	}
}

// TestCMPSharedLevelVisible: the report carries one entry per private L1
// plus the shared levels, and the shared L2 sees traffic from both cores.
func TestCMPSharedLevelVisible(t *testing.T) {
	m := cmpMachine(2)
	p, err := core.NewCMP(m, cmpSources(m))
	if err != nil {
		t.Fatal(err)
	}
	for p.Graduated() < 20_000 && !p.Done() {
		p.Step(1 << 50)
	}
	rep := p.Report()
	names := make(map[string]bool)
	var l2Accesses int64
	for _, lv := range rep.MemLevels {
		names[lv.Name] = true
		if lv.Name == "L2" {
			l2Accesses = lv.Accesses
		}
	}
	for _, want := range []string{"c0.L1", "c1.L1", "L2"} {
		if !names[want] {
			t.Fatalf("report levels %v missing %q", rep.MemLevels, want)
		}
	}
	if l2Accesses == 0 {
		t.Fatal("shared L2 saw no traffic")
	}
}
