package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// TestDecoupledDrainSlackCounterexample pins the quick-check
// counterexample behind TestQuickProgramsDrainBothModes' 2-cycle slack: a
// 49-instruction program on which the decoupled Figure-2 machine drains 2
// cycles after the non-decoupled one (60 vs 58). The loss is a terminal
// artifact — the last few EP instructions ride the AP/EP queue handoff
// after fetch has run dry, where slippage can no longer buy anything — so
// it is bounded by queue latency, not proportional to program length.
func TestDecoupledDrainSlackCounterexample(t *testing.T) {
	data := []byte{
		0x0b, 0x95, 0xb6, 0xcb, 0xbc, 0xb4, 0x5f, 0x5c, 0x02, 0x38,
		0x2b, 0x59, 0xef, 0x09, 0x76, 0xeb, 0xc9, 0x83, 0x68, 0x5d,
		0xbd, 0xa2, 0x94, 0x85, 0xd6, 0xf7, 0x3a, 0xf6, 0x5e, 0x1a,
		0x6b, 0xb9, 0x23, 0x9f, 0x04, 0xd7, 0xac, 0x5b, 0xfa, 0x5c,
		0x0c, 0x63, 0x35, 0x47, 0x53, 0x44, 0x8c, 0xfc, 0x7f,
	}
	insts := genProgram(data)
	run := func(m config.Machine) (int64, int64) {
		c, err := New(m, []trace.Reader{trace.Slice(insts)})
		if err != nil {
			t.Fatal(err)
		}
		if _, drained := c.Run(2_000_000); !drained {
			t.Fatal("machine did not drain")
		}
		return c.Collector().Graduated, c.Now()
	}
	gDec, cycDec := run(config.Figure2(1))
	gNon, cycNon := run(config.Figure2(1).NonDecoupled())
	if gDec != int64(len(insts)) || gNon != int64(len(insts)) {
		t.Fatalf("graduated dec=%d non=%d, want %d", gDec, gNon, len(insts))
	}
	if cycDec > cycNon+2 {
		t.Errorf("drain slack grew: decoupled %d vs non-decoupled %d cycles", cycDec, cycNon)
	}
}

// warpProgram is a deterministic mixed program long enough to leave
// architectural state behind: loads and stores walking distinct lines,
// branches with a stable taken pattern, and ALU filler.
func warpProgram(n int, addrBase uint64) []isa.Inst {
	var insts []isa.Inst
	for i := 0; i < n; i++ {
		pc := uint64(i%16) * 4
		switch i % 5 {
		case 0:
			insts = append(insts, fpLoad(pc, 8+i%4, 1, addrBase+uint64(i)*32))
		case 1:
			insts = append(insts, fpStore(pc, i%6, 1, addrBase+uint64(i)*32))
		case 2:
			insts = append(insts, brInst(pc, 1+i%4, i%3 == 0))
		default:
			insts = append(insts, intOp(pc, 1+i%8, 9+i%4, 13))
		}
	}
	return insts
}

// TestWarpAdvancesArchitecturalStateOnly drives the functional warp on a
// fresh single-core machine: cursors move (the consumed instructions
// never graduate), simulated time stands still, the caches warm, and the
// remainder of the program still drains on the timed path.
func TestWarpAdvancesArchitecturalStateOnly(t *testing.T) {
	insts := warpProgram(200, 0x10000)
	c, err := New(config.Figure2(1), []trace.Reader{trace.Slice(insts)})
	if err != nil {
		t.Fatal(err)
	}
	if !c.PipelineEmpty() {
		t.Fatal("fresh machine's pipeline not empty")
	}
	if !c.DrainPipeline() {
		t.Fatal("drain of an idle machine failed")
	}
	if done := c.Warp(100); done != 100 {
		t.Fatalf("warped %d instructions, want 100", done)
	}
	if c.Now() != 0 {
		t.Errorf("warp advanced time to cycle %d", c.Now())
	}
	if g := c.Collector().Graduated; g != 0 {
		t.Errorf("warp graduated %d instructions", g)
	}
	// The warmed footprint is architecturally present: the first warped
	// load's line sits in the L1.
	if !c.Mem().Cache().Lookup(0x10000) {
		t.Error("warp did not warm the first touched line")
	}
	// The timed path finishes the rest and only the rest.
	if _, drained := c.Run(2_000_000); !drained {
		t.Fatal("post-warp run did not drain")
	}
	if g := c.Collector().Graduated; g != 100 {
		t.Errorf("graduated %d instructions after the warp, want 100", g)
	}
	// Sources are dry: further warps consume nothing.
	if done := c.Warp(10); done != 0 {
		t.Errorf("warp on a dry source consumed %d", done)
	}
}

// TestWarpRoundRobinAcrossContexts checks warp fairness: with two
// contexts and a bound below the total, consumption alternates one
// instruction per context per round, mirroring fetch's rotation.
func TestWarpRoundRobinAcrossContexts(t *testing.T) {
	// The bases must not alias in the direct-mapped 64 KB L1 (their
	// distance is not a multiple of the cache size).
	a := warpProgram(40, 0x10000)
	b := warpProgram(40, 0x24000)
	c, err := New(config.Figure2(2), []trace.Reader{trace.Slice(a), trace.Slice(b)})
	if err != nil {
		t.Fatal(err)
	}
	if done := c.Warp(10); done != 10 {
		t.Fatalf("warped %d, want 10", done)
	}
	// 5 rounds of one instruction each: both contexts' first touched
	// lines (instruction 0 is a load in each program) are warm.
	if !c.Mem().Cache().Lookup(0x10000) || !c.Mem().Cache().Lookup(0x24000) {
		t.Error("round-robin warp did not touch both contexts' footprints")
	}
	// An exhausted context is skipped, the other drains the budget.
	short, err := New(config.Figure2(2), []trace.Reader{
		trace.Slice(a[:3]), trace.Slice(b)})
	if err != nil {
		t.Fatal(err)
	}
	if done := short.Warp(20); done != 20 {
		t.Fatalf("warped %d with one short context, want 20", done)
	}
}

// TestDrainPipelineReachesQuietBoundary starts a run mid-flight, drains,
// and requires the clean boundary: empty pipelines, quiescent memory,
// and fetch unfrozen afterwards (the machine still finishes).
func TestDrainPipelineReachesQuietBoundary(t *testing.T) {
	insts := warpProgram(400, 0x10000)
	c, err := New(config.Figure2(1), []trace.Reader{trace.Slice(insts)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if !c.DrainPipeline() {
		t.Fatal("drain did not complete")
	}
	if !c.PipelineEmpty() {
		t.Error("pipeline not empty after drain")
	}
	if !c.Mem().Quiescent() {
		t.Error("memory not quiescent after drain")
	}
	mid := c.Collector().Graduated
	if mid == 0 {
		t.Error("nothing graduated before the boundary")
	}
	if _, drained := c.Run(2_000_000); !drained {
		t.Fatal("post-drain run did not finish")
	}
	if g := c.Collector().Graduated; g != int64(len(insts)) {
		t.Errorf("graduated %d, want %d", g, len(insts))
	}
}

// TestCMPWarpAndDrain exercises the chip-level warp and drain: two cores
// × one context, lockstep interleaving, both footprints warm, and the
// remainder completes on the timed path.
func TestCMPWarpAndDrain(t *testing.T) {
	m := config.Figure2(1).WithCores(2).WithHierarchy(64,
		config.SharedL2(64<<10, 8))
	a := warpProgram(100, 0x10000)
	b := warpProgram(100, 0x90000)
	p, err := NewCMP(m, []trace.Reader{trace.Slice(a), trace.Slice(b)})
	if err != nil {
		t.Fatal(err)
	}
	if !p.DrainPipeline() {
		t.Fatal("drain of an idle CMP failed")
	}
	if done := p.Warp(60); done != 60 {
		t.Fatalf("warped %d, want 60", done)
	}
	if p.Now() != 0 {
		t.Errorf("CMP warp advanced time to %d", p.Now())
	}
	// 30 instructions per core consumed: both cores' first lines warm.
	if !p.Core(0).Mem().Cache().Lookup(0x10000) {
		t.Error("core 0 footprint cold after warp")
	}
	if !p.Core(1).Mem().Cache().Lookup(0x90000) {
		t.Error("core 1 footprint cold after warp")
	}
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	if !p.DrainPipeline() {
		t.Fatal("mid-run CMP drain failed")
	}
	// A dry warp consumes what remains and no more.
	if done := p.Warp(1_000); done >= 140 {
		t.Errorf("dry warp consumed %d, more than the %d remaining", done, 140)
	}
}

// TestCoreAccessors pins the trivial read-side surface the simulator
// drivers rely on.
func TestCoreAccessors(t *testing.T) {
	m := config.Figure2(2)
	c, err := New(m, []trace.Reader{
		trace.Slice(warpProgram(10, 0x1000)), trace.Slice(warpProgram(10, 0x2000))})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Config(); got.Threads != 2 {
		t.Errorf("Config().Threads = %d, want 2", got.Threads)
	}
	if c.Context(0) == nil || c.Context(1) == nil {
		t.Error("Context returned nil")
	}

	cm := config.Figure2(1).WithCores(2).WithHierarchy(64,
		config.SharedL2(64<<10, 8))
	p, err := NewCMP(cm, []trace.Reader{
		trace.Slice(warpProgram(10, 0x1000)), trace.Slice(warpProgram(10, 0x2000))})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Config(); got.Cores != 2 {
		t.Errorf("CMP Config().Cores = %d, want 2", got.Cores)
	}
	if p.Interconnect() == nil {
		t.Error("Interconnect returned nil")
	}
	if p.Done() {
		t.Error("fresh CMP reports done")
	}
}
