package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
)

// Epoch-parallel CMP execution (DESIGN.md §12): the cores of one run
// advance concurrently on worker goroutines between shared-level
// boundary events, and a coordinator applies every interconnect
// crossing in the serial lockstep order — (cycle, core index), fills
// before write-backs before fetches within a cycle — so the parallel
// run is bit-identical to the serial one.
//
// Worker protocol, per epoch [start, h]:
//
//   - Each live core's worker steps its core privately toward h
//     (pipeline, private L1 hits, per-core calendar fast-forwards, and
//     with PrivateHierarchy its whole private chain).
//   - A fetch into the shared chain parks the worker: it publishes the
//     request, releases its CPU slot and blocks until the coordinator
//     has applied every shared event ordered before it and replayed
//     the fetch against the real chain. Dirty-victim write-backs are
//     fire-and-forget: cycle-stamped into a per-core FIFO for the
//     barrier.
//   - The coordinator applies the earliest parked crossing only when
//     every still-running worker is provably past its cycle (the gate
//     handshake below); ties break by core index, which is exactly the
//     serial FCFS-by-core-index arbitration.
//   - Cores blocked on a full shared MSHR file retry their access
//     every cycle (the probe marks the cycle unskippable), so each
//     retry is itself a crossing and no worker can fast-forward past
//     the shared fill that unblocks it.
//
// Determinism: every coordinator decision is a function of (cycle,
// core index) orderings of simulation events, which are themselves
// deterministic facts of the serial machine. Host scheduling only
// changes when the coordinator learns a fact, never its value, so
// results are independent of GOMAXPROCS and bit-identical to serial.
//
// The runner requires the workload's disjoint-address-space promise
// (sim gates on it): coherence probes are suppressed while an epoch is
// open, which is observation-free only when no line is ever cached by
// two cores.

// Worker status, as tracked by the coordinator.
const (
	wsRunning  = iota // stepping toward the horizon; cycle = proven lower bound
	wsCrossing        // parked on a shared-chain fetch at cycle
	wsHorizon         // reached the epoch horizon
	wsDone            // core drained at cycle, before the horizon
)

// Worker → coordinator events.
const (
	evCrossing = iota // parked on a shared fetch at cycle
	evHorizon         // reached the horizon (or observed an abort)
	evDone            // core drained at cycle
	evCleared         // passed a requested gate; cycle = current core cycle
)

type workerEvent struct {
	idx   int
	kind  int
	cycle int64
}

type wstate struct {
	status int
	cycle  int64
}

type wbEntry struct {
	cycle int64
	line  uint64
}

type fetchResult struct {
	avail int64
	ok    bool
}

// EpochRunner drives one CMP's cores in parallel epochs. Create with
// NewEpochRunner (which rewires the interconnect for epoch mode — the
// machine remains serially steppable between epochs), run epochs with
// RunEpoch, and Close when the run ends to stop the worker goroutines.
type EpochRunner struct {
	p       *CMP
	ws      []*epochWorker
	st      []wstate
	events  chan workerEvent
	slots   chan struct{}
	aborted atomic.Bool
	closed  bool
}

type epochWorker struct {
	r     *EpochRunner
	idx   int
	co    *Core
	runCh chan int64       // coordinator → worker: run an epoch to this horizon
	resCh chan fetchResult // coordinator → worker: parked fetch outcome

	// Parked crossing request; written by the worker before its
	// evCrossing send, read by the coordinator after receiving it.
	reqLine  uint64
	reqReady int64

	// Outbound shared-chain write-backs, appended in cycle order by the
	// worker, drained in global (cycle, index) order by the coordinator.
	mu     sync.Mutex
	wbs    []wbEntry
	wbHead int

	// gate is the coordinator's request "report when your cycle exceeds
	// this"; the worker answers with evCleared. Zero means no request.
	gate atomic.Int64
}

// NewEpochRunner prepares the CMP for epoch-parallel execution with at
// most `workers` cores advancing concurrently (clamped to the core
// count; values below two still work but buy nothing). The caller must
// have declared disjoint address spaces on the interconnect — the
// coherence-skip soundness argument depends on it.
func NewEpochRunner(p *CMP, workers int) *EpochRunner {
	if workers > len(p.cores) {
		workers = len(p.cores)
	}
	if workers < 1 {
		workers = 1
	}
	e := &EpochRunner{
		p:      p,
		st:     make([]wstate, len(p.cores)),
		events: make(chan workerEvent, 2*len(p.cores)),
		slots:  make(chan struct{}, workers),
	}
	handlers := make([]mem.EpochHandler, len(p.cores))
	for i, co := range p.cores {
		w := &epochWorker{
			r:     e,
			idx:   i,
			co:    co,
			runCh: make(chan int64),
			resCh: make(chan fetchResult, 1),
		}
		e.ws = append(e.ws, w)
		handlers[i] = w
	}
	p.ic.EnableEpochMode(handlers, func(c int) func(at int64) {
		co := p.cores[c]
		return func(at int64) { co.cal.schedule(co.now, at) }
	})
	for _, w := range e.ws {
		go w.loop()
	}
	return e
}

// Close stops the worker goroutines. The machine remains usable on the
// serial path (the interconnect stays in epoch mode, which the serial
// CMP driver handles).
func (e *EpochRunner) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, w := range e.ws {
		close(w.runCh)
	}
}

// RunEpoch advances every core from the common current cycle to
// exactly the horizon h, bit-identically to serial lockstep stepping.
// The caller guarantees serial stepping could not have stopped strictly
// inside the epoch (sim derives h from the remaining instruction
// budget). On cancellation the machine state is not serial-equivalent
// and the run must be discarded — the returned error propagates.
func (e *EpochRunner) RunEpoch(ctx context.Context, h int64) error {
	p := e.p
	p.ic.EpochSetActive(true)
	defer p.ic.EpochSetActive(false)
	st := e.st
	running := 0
	for i, w := range e.ws {
		if w.co.Done() {
			st[i] = wstate{status: wsDone, cycle: w.co.now}
		} else {
			st[i] = wstate{status: wsRunning, cycle: w.co.now}
			running++
		}
	}
	for i, w := range e.ws {
		if st[i].status == wsRunning {
			w.runCh <- h
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return e.abort(st, running, err)
		}
		// Earliest parked crossing; ties go to the lowest core index —
		// the serial FCFS-by-core-index arbitration order.
		t, c := int64(0), -1
		for i := range st {
			if st[i].status == wsCrossing && (c < 0 || st[i].cycle < t) {
				t, c = st[i].cycle, i
			}
		}
		if c < 0 {
			if running == 0 {
				break
			}
			e.recv(st, &running)
			continue
		}
		// A core that drained before t can still hold in-flight fills
		// whose dirty victims write back into the shared chain; advance
		// it (single-threaded, it has no worker running) so its traffic
		// is buffered before the frontier moves past it.
		for i := range st {
			if st[i].status == wsDone && st[i].cycle < t {
				e.advanceParked(e.ws[i], h)
				st[i] = wstate{status: wsHorizon, cycle: h}
			}
		}
		// Every running worker must be provably past cycle t: one at or
		// before t could still emit earlier-ordered traffic.
		wait := false
		for i := range st {
			if st[i].status == wsRunning && st[i].cycle <= t {
				e.ws[i].gate.Store(t)
				wait = true
			}
		}
		if wait {
			e.recv(st, &running)
			continue
		}
		// Apply everything ordered before the crossing, then the
		// crossing itself, and resume its worker.
		w := e.ws[c]
		e.drainShared(t, c)
		avail, ok := p.ic.SharedFetch(t, w.reqLine, w.reqReady)
		st[c] = wstate{status: wsRunning, cycle: t}
		running++
		w.resCh <- fetchResult{avail: avail, ok: ok}
	}
	e.finish(h, st)
	return nil
}

// recv blocks for one worker event and folds it into the status table.
func (e *EpochRunner) recv(st []wstate, running *int) {
	e.apply(st, running, <-e.events)
}

func (e *EpochRunner) apply(st []wstate, running *int, ev workerEvent) {
	switch ev.kind {
	case evCrossing:
		st[ev.idx] = wstate{status: wsCrossing, cycle: ev.cycle}
		*running -= 1
	case evHorizon:
		st[ev.idx] = wstate{status: wsHorizon, cycle: ev.cycle}
		*running -= 1
	case evDone:
		st[ev.idx] = wstate{status: wsDone, cycle: ev.cycle}
		*running -= 1
	case evCleared:
		// May arrive late for an already-satisfied gate; it still
		// tightens the worker's proven lower bound.
		if st[ev.idx].status == wsRunning && ev.cycle > st[ev.idx].cycle {
			st[ev.idx].cycle = ev.cycle
		}
	}
}

// finish closes the epoch: every core is parked at the horizon or
// drained. Drained cores advance to the epoch end with full fidelity
// (their in-flight fills land at exact cycles), and all remaining
// shared traffic applies in order. If every core drained — possible
// only with finite sources; the built-in generators never drain — the
// epoch truncates at the last drain cycle, where the serial loop would
// have stopped.
func (e *EpochRunner) finish(h int64, st []wstate) {
	end := h
	allDone := true
	for i := range st {
		if st[i].status != wsDone {
			allDone = false
			break
		}
	}
	if allDone {
		end = 0
		for i := range st {
			if st[i].cycle > end {
				end = st[i].cycle
			}
		}
	}
	for _, w := range e.ws {
		if w.co.now < end {
			e.advanceParked(w, end)
		}
	}
	e.drainShared(end, len(e.ws))
}

// advanceParked advances a parked, drained core to the target cycle on
// the coordinator goroutine: ticks when state changes (in-flight L1 or
// private-chain fills still land, and their dirty victims write back),
// fast-forwards between events. Equivalent to the serial loop's
// treatment of a drained core, minus the Done re-check serial stepping
// performs (a drained core stays drained).
func (e *EpochRunner) advanceParked(w *epochWorker, to int64) {
	co := w.co
	for co.now < to {
		co.Tick()
		if !co.progressed {
			end := co.nextEventAt() - 1
			if end > to {
				end = to
			}
			if k := end - co.now; k > 0 {
				co.fastForward(k)
			}
		}
	}
}

// drainShared applies every pending shared-chain event ordered before
// core c's fetch at cycle t: internal fills at cycles ≤ t (a fill at
// the crossing's own cycle precedes it — the serial BeginCycle runs
// before any core ticks), and buffered write-backs at (cycle < t), or
// (cycle == t, index ≤ c) — core c's own cycle-t victims wrote back in
// its BeginCycle, before its access stage. Fills tie ahead of
// write-backs at the same cycle for the same reason.
func (e *EpochRunner) drainShared(t int64, c int) {
	ic := e.p.ic
	for {
		fu, fok := ic.NextSharedFillAt()
		wu, wi, wok := e.peekWB()
		if fok && fu <= t && (!wok || fu <= wu) {
			ic.ApplySharedCycle(fu)
			continue
		}
		if wok && (wu < t || (wu == t && wi <= c)) {
			wb := e.ws[wi].popWB()
			ic.SharedWriteback(wb.cycle, wb.line)
			continue
		}
		return
	}
}

// peekWB returns the earliest buffered write-back's (cycle, core
// index), scanning the per-core FIFOs. Workers may append concurrently
// under their mutexes; anything a scan misses is at a later cycle than
// the coordinator's current frontier and is picked up next time.
func (e *EpochRunner) peekWB() (int64, int, bool) {
	best, bi := int64(0), -1
	for i, w := range e.ws {
		w.mu.Lock()
		if w.wbHead < len(w.wbs) {
			if cyc := w.wbs[w.wbHead].cycle; bi < 0 || cyc < best {
				best, bi = cyc, i
			}
		}
		w.mu.Unlock()
	}
	return best, bi, bi >= 0
}

// abort unwinds a cancelled epoch: parked fetches are rejected so
// their workers can observe the abort flag and park, then remaining
// events drain. Machine state is no longer serial-equivalent, which is
// fine — a cancelled run returns no result.
func (e *EpochRunner) abort(st []wstate, running int, err error) error {
	e.aborted.Store(true)
	for i := range st {
		if st[i].status == wsCrossing {
			st[i] = wstate{status: wsRunning, cycle: st[i].cycle}
			running++
			e.ws[i].resCh <- fetchResult{}
		}
	}
	for running > 0 {
		ev := <-e.events
		e.apply(st, &running, ev)
		if ev.kind == evCrossing {
			st[ev.idx] = wstate{status: wsRunning, cycle: ev.cycle}
			running++
			e.ws[ev.idx].resCh <- fetchResult{}
		}
	}
	e.aborted.Store(false)
	return err
}

// loop is the worker goroutine body: one epoch per horizon received.
func (w *epochWorker) loop() {
	for h := range w.runCh {
		w.run(h)
	}
}

func (w *epochWorker) run(h int64) {
	w.acquire()
	co := w.co
	for co.now < h && !co.Done() && !w.r.aborted.Load() {
		co.Step(h)
		if g := w.gate.Load(); g != 0 && co.now > g {
			w.gate.Store(0)
			w.send(evCleared, co.now)
		}
	}
	w.release()
	if co.now < h && co.Done() {
		w.send(evDone, co.now)
	} else {
		w.send(evHorizon, co.now)
	}
}

func (w *epochWorker) acquire() { w.r.slots <- struct{}{} }
func (w *epochWorker) release() { <-w.r.slots }

func (w *epochWorker) send(kind int, cycle int64) {
	w.r.events <- workerEvent{idx: w.idx, kind: kind, cycle: cycle}
}

// EpochFetch implements mem.EpochHandler: park until the coordinator
// replays the fetch in barrier order. The CPU slot is released while
// parked so other cores' workers can run — and so the slot discipline
// can never deadlock: a parked worker holds nothing.
func (w *epochWorker) EpochFetch(line uint64, now, ready int64) (int64, bool) {
	w.release()
	w.reqLine, w.reqReady = line, ready
	w.send(evCrossing, now)
	res := <-w.resCh
	w.acquire()
	return res.avail, res.ok
}

// EpochWriteback implements mem.EpochHandler: buffer the dirty victim,
// cycle-stamped, for the barrier drain.
func (w *epochWorker) EpochWriteback(line uint64, now int64) {
	w.mu.Lock()
	w.wbs = append(w.wbs, wbEntry{cycle: now, line: line})
	w.mu.Unlock()
}

func (w *epochWorker) popWB() wbEntry {
	w.mu.Lock()
	wb := w.wbs[w.wbHead]
	w.wbHead++
	if w.wbHead == len(w.wbs) {
		w.wbs = w.wbs[:0]
		w.wbHead = 0
	}
	w.mu.Unlock()
	return wb
}
