package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// White-box tests for the epoch runner's horizon handling against the
// per-core event calendars (satellite coverage for DESIGN.md §12): an
// epoch boundary landing exactly on a calendar far-heap event, a shared
// fill broadcast landing exactly on the epoch edge, and an epoch whose
// window contains no shared events at all. Each scenario runs the epoch
// machine against a serially-stepped twin built from identical sources
// and requires bit-identical state at every horizon.

// epochPair is an epoch-parallel CMP and its serial oracle twin.
type epochPair struct {
	p      *CMP // epoch machine
	er     *EpochRunner
	oracle *CMP // serial twin, plain lockstep Step
}

func newEpochPair(t *testing.T, m config.Machine, workers int) *epochPair {
	t.Helper()
	build := func() *CMP {
		n := m.Effective().TotalContexts()
		srcs := make([]trace.Reader, n)
		copy(srcs, workload.MixSources(n, workload.MixOpts{}))
		p, err := NewCMP(m, srcs)
		if err != nil {
			t.Fatal(err)
		}
		p.Interconnect().SetDisjointAddressSpaces(true)
		return p
	}
	pair := &epochPair{p: build(), oracle: build()}
	pair.er = NewEpochRunner(pair.p, workers)
	t.Cleanup(pair.er.Close)
	return pair
}

// advance runs one epoch to horizon h on the parallel machine, steps the
// oracle to the same cycle, and requires identical state.
func (ep *epochPair) advance(t *testing.T, h int64) {
	t.Helper()
	if err := ep.er.RunEpoch(context.Background(), h); err != nil {
		t.Fatalf("RunEpoch(%d): %v", h, err)
	}
	for ep.oracle.Now() < h {
		ep.oracle.Step(h)
	}
	ep.check(t, h)
}

func (ep *epochPair) check(t *testing.T, h int64) {
	t.Helper()
	if ep.p.Now() != h || ep.oracle.Now() != h {
		t.Fatalf("clocks at horizon %d: parallel %d, oracle %d", h, ep.p.Now(), ep.oracle.Now())
	}
	for c := range ep.p.cores {
		if got, want := ep.p.cores[c].now, ep.oracle.cores[c].now; got != want {
			t.Fatalf("core %d clock: parallel %d, oracle %d", c, got, want)
		}
	}
	got, want := ep.p.Report(), ep.oracle.Report()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state diverged at horizon %d\nparallel: %+v\noracle:   %+v", h, got, want)
	}
}

// nextCoreEvent returns the earliest calendar event strictly after now
// across the parallel machine's cores, and whether the oracle agrees.
func (ep *epochPair) nextCoreEvent(t *testing.T) int64 {
	t.Helper()
	min := func(p *CMP) int64 {
		e := int64(Never)
		for _, co := range p.cores {
			if at := co.nextEventAt(); at < e {
				e = at
			}
		}
		return e
	}
	got, want := min(ep.p), min(ep.oracle)
	if got != want {
		t.Fatalf("calendar horizon query: parallel %d, oracle %d", got, want)
	}
	return got
}

// TestEpochHorizonOnFarHeapEvent pins the epoch boundary exactly on a
// calendar event that lives in the far-overflow heap (beyond the timing
// wheel's bitmap window): a private hierarchy with a 6000-cycle DRAM
// schedules fills thousands of cycles out into the owning core's
// calendar, and the epoch ending on that exact cycle must apply the
// fill identically to the serial machine.
func TestEpochHorizonOnFarHeapEvent(t *testing.T) {
	m := config.Figure2(1).WithCores(2).
		WithHierarchy(6000, config.SharedL2(64<<10, 8)).
		WithPrivateHierarchy()
	ep := newEpochPair(t, m, 2)

	// Prime: long enough for both cores to miss all the way to DRAM.
	ep.advance(t, 300)

	var hit bool
	for i := 0; i < 8; i++ {
		e := ep.nextCoreEvent(t)
		if e == int64(Never) {
			t.Fatal("no pending calendar event with DRAM misses in flight")
		}
		if e-ep.p.Now() > calWindow {
			hit = true
		}
		// Epoch boundary exactly on the event cycle.
		ep.advance(t, e)
	}
	if !hit {
		t.Fatalf("no far-heap event seen (window %d); raise the DRAM latency", calWindow)
	}
	// And past it, so the fill's downstream effects replay too.
	ep.advance(t, ep.p.Now()+500)
}

// TestEpochEdgeSharedFill pins a shared-level fill — the event the
// serial machine broadcasts into every core's calendar and epoch mode
// reroutes into the interconnect's own fill calendar — exactly on the
// epoch edge: the barrier must apply it at its exact cycle, not a cycle
// early or late.
func TestEpochEdgeSharedFill(t *testing.T) {
	m := config.Figure2(2).WithCores(2).
		WithHierarchy(64, config.SharedL2(256<<10, 8))
	ep := newEpochPair(t, m, 2)

	ep.advance(t, 100)
	var hit bool
	for i := 0; i < 12; i++ {
		at, ok := ep.p.ic.NextSharedFillAt()
		if !ok || at <= ep.p.Now() {
			// No fill in flight right now; nudge forward and retry.
			ep.advance(t, ep.p.Now()+50)
			continue
		}
		hit = true
		// Epoch edge exactly on the shared fill cycle, then one cycle
		// past it (the fill frees the shared MSHR *at* the edge; the
		// cores react the cycle after).
		ep.advance(t, at)
		ep.advance(t, ep.p.Now()+1)
	}
	if !hit {
		t.Fatal("no shared fill observed; the config no longer misses to DRAM")
	}
}

// TestEpochZeroSharedEvents runs epochs over a machine with no shared
// hierarchy at all — the flat model keeps every memory event in the
// per-core calendars — so whole epochs contain zero shared events and
// the barrier's drain loop must be a no-op that still keeps the cores
// in lockstep agreement with the oracle.
func TestEpochZeroSharedEvents(t *testing.T) {
	m := config.Figure2(2).WithCores(2)
	ep := newEpochPair(t, m, 2)

	for _, h := range []int64{100, 1_000, 5_000, 20_000} {
		ep.advance(t, h)
		if at, ok := ep.p.ic.NextSharedFillAt(); ok {
			t.Fatalf("flat machine reported a shared fill at %d", at)
		}
	}
}
