package core

// Unit tests for the event calendar. The scheduler-level guarantees
// (bit-identical fast-forward) live in internal/sim's equivalence suite
// and fastforward_test.go; these tests pin the data structure itself:
// wheel indexing, same-cycle coalescing, window wraparound, the far-heap
// overflow path, lazy clearing across long advances, and stale (cancelled)
// events.

import (
	"math/rand"
	"testing"
)

// calRef is the oracle: a plain set of scheduled cycles.
type calRef map[int64]struct{}

func (r calRef) schedule(at int64) { r[at] = struct{}{} }
func (r calRef) nextAfter(now int64) int64 {
	next := int64(Never)
	for at := range r {
		if at > now && at < next {
			next = at
		}
	}
	return next
}

// TestCalendarBasic: schedule, peek, advance-by-query.
func TestCalendarBasic(t *testing.T) {
	var c calendar
	if got := c.nextAfter(0); got != Never {
		t.Fatalf("empty calendar: nextAfter = %d, want Never", got)
	}
	c.schedule(0, 5)
	c.schedule(0, 3)
	c.schedule(0, 9)
	if got := c.nextAfter(0); got != 3 {
		t.Fatalf("nextAfter(0) = %d, want 3", got)
	}
	if got := c.nextAfter(3); got != 5 {
		t.Fatalf("nextAfter(3) = %d, want 5 (3 consumed)", got)
	}
	if got := c.nextAfter(8); got != 9 {
		t.Fatalf("nextAfter(8) = %d, want 9", got)
	}
	if got := c.nextAfter(9); got != Never {
		t.Fatalf("nextAfter(9) = %d, want Never (drained)", got)
	}
}

// TestCalendarSameCycleEvents: many events on one cycle coalesce into a
// single wake-up, and their insertion order is immaterial.
func TestCalendarSameCycleEvents(t *testing.T) {
	var c calendar
	for i := 0; i < 10; i++ {
		c.schedule(100, 256) // e.g. several registers delivered together
	}
	c.schedule(100, 200)
	c.schedule(100, 256)
	if got := c.nextAfter(100); got != 200 {
		t.Fatalf("nextAfter = %d, want 200", got)
	}
	if got := c.nextAfter(200); got != 256 {
		t.Fatalf("nextAfter(200) = %d, want 256", got)
	}
	if got := c.nextAfter(256); got != Never {
		t.Fatalf("calendar not drained: %d", got)
	}
}

// TestCalendarPastEventsIgnored: scheduling at or before now is a no-op
// (the present is not a future event).
func TestCalendarPastEventsIgnored(t *testing.T) {
	var c calendar
	c.schedule(50, 50)
	c.schedule(50, 7)
	if got := c.nextAfter(50); got != Never {
		t.Fatalf("past/present events surfaced: nextAfter = %d", got)
	}
}

// TestCalendarWraparound walks events across many wheel windows,
// exercising index wrap and the lazy clearing of passed bits.
func TestCalendarWraparound(t *testing.T) {
	var c calendar
	now := int64(0)
	for i := 0; i < 200; i++ {
		at := now + calWindow - 7 // just inside the window, wraps constantly
		c.schedule(now, at)
		if got := c.nextAfter(now); got != at {
			t.Fatalf("iter %d: nextAfter(%d) = %d, want %d", i, now, got, at)
		}
		now = at
	}
	if got := c.nextAfter(now); got != Never {
		t.Fatalf("calendar not drained after wrap walk: %d", got)
	}
}

// TestCalendarFarOverflow: events beyond the wheel window (very long L2
// latencies, deep bus queueing) overflow to the heap and migrate back as
// the wheel advances.
func TestCalendarFarOverflow(t *testing.T) {
	var c calendar
	events := []int64{calWindow + 100, 3 * calWindow, 10 * calWindow, calWindow + 100, 5}
	for _, at := range events {
		c.schedule(0, at)
	}
	want := []int64{5, calWindow + 100, 3 * calWindow, 10 * calWindow}
	now := int64(0)
	for _, w := range want {
		got := c.nextAfter(now)
		if got != w {
			t.Fatalf("nextAfter(%d) = %d, want %d", now, got, w)
		}
		now = got
	}
	if got := c.nextAfter(now); got != Never {
		t.Fatalf("calendar not drained: %d", got)
	}
	if !c.empty() {
		t.Fatal("calendar should be empty after consuming all events")
	}
}

// TestCalendarStaleEvents: events skipped past by a long advance (their
// cause was cancelled, e.g. a mispredict redirect overtaking a pending
// fetch-resume) are swept and never resurface a window later at the
// aliased index.
func TestCalendarStaleEvents(t *testing.T) {
	var c calendar
	c.schedule(0, 10)
	c.schedule(0, 20)
	// Jump far past both without consuming them (cancelled events).
	if got := c.nextAfter(5 * calWindow); got != Never {
		t.Fatalf("stale events resurfaced: %d", got)
	}
	// The aliased indices must be clean for new events.
	at := int64(5*calWindow + 10)
	c.schedule(5*calWindow, at)
	if got := c.nextAfter(5 * calWindow); got != at {
		t.Fatalf("nextAfter = %d, want %d", got, at)
	}
}

// TestCalendarAgainstReference drives random schedules and queries
// against a brute-force oracle, including adversarial clustering around
// window boundaries.
func TestCalendarAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var c calendar
		ref := calRef{}
		now := int64(rng.Intn(1000))
		for step := 0; step < 400; step++ {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				var at int64
				switch rng.Intn(4) {
				case 0: // near future
					at = now + 1 + int64(rng.Intn(16))
				case 1: // mid-window
					at = now + int64(rng.Intn(calWindow))
				case 2: // window boundary neighbourhood
					at = now + calWindow + int64(rng.Intn(5)) - 2
				default: // far future
					at = now + int64(rng.Intn(4*calWindow))
				}
				c.schedule(now, at)
				if at > now+1 {
					// The calendar's contract drops next-cycle events
					// (Step's unconditional Tick covers them).
					ref.schedule(at)
				}
			}
			want := ref.nextAfter(now)
			if got := c.nextAfter(now); got != want {
				t.Fatalf("trial %d step %d: nextAfter(%d) = %d, want %d", trial, step, now, got, want)
			}
			// Advance: sometimes tick, sometimes jump (fast-forward),
			// sometimes jump past events (cancellation).
			switch rng.Intn(3) {
			case 0:
				now++
			case 1:
				if want != Never {
					now = want
				} else {
					now += int64(rng.Intn(100))
				}
			default:
				now += int64(rng.Intn(2 * calWindow))
			}
		}
	}
}
