package core

// Unit tests for the event calendar. The scheduler-level guarantees
// (bit-identical fast-forward) live in internal/sim's equivalence suite
// and fastforward_test.go; these tests pin the data structure itself:
// wheel indexing, same-cycle coalescing, window wraparound, the far-heap
// overflow path, lazy clearing across long advances, and stale (cancelled)
// events.

import (
	"math/rand"
	"testing"
)

// calRef is the oracle: a plain set of scheduled cycles.
type calRef map[int64]struct{}

func (r calRef) schedule(at int64) { r[at] = struct{}{} }
func (r calRef) nextAfter(now int64) int64 {
	next := int64(Never)
	for at := range r {
		if at > now && at < next {
			next = at
		}
	}
	return next
}

// TestCalendarBasic: schedule, peek, advance-by-query.
func TestCalendarBasic(t *testing.T) {
	var c calendar
	if got := c.nextAfter(0); got != Never {
		t.Fatalf("empty calendar: nextAfter = %d, want Never", got)
	}
	c.schedule(0, 5)
	c.schedule(0, 3)
	c.schedule(0, 9)
	if got := c.nextAfter(0); got != 3 {
		t.Fatalf("nextAfter(0) = %d, want 3", got)
	}
	if got := c.nextAfter(3); got != 5 {
		t.Fatalf("nextAfter(3) = %d, want 5 (3 consumed)", got)
	}
	if got := c.nextAfter(8); got != 9 {
		t.Fatalf("nextAfter(8) = %d, want 9", got)
	}
	if got := c.nextAfter(9); got != Never {
		t.Fatalf("nextAfter(9) = %d, want Never (drained)", got)
	}
}

// TestCalendarSameCycleEvents: many events on one cycle coalesce into a
// single wake-up, and their insertion order is immaterial.
func TestCalendarSameCycleEvents(t *testing.T) {
	var c calendar
	for i := 0; i < 10; i++ {
		c.schedule(100, 256) // e.g. several registers delivered together
	}
	c.schedule(100, 200)
	c.schedule(100, 256)
	if got := c.nextAfter(100); got != 200 {
		t.Fatalf("nextAfter = %d, want 200", got)
	}
	if got := c.nextAfter(200); got != 256 {
		t.Fatalf("nextAfter(200) = %d, want 256", got)
	}
	if got := c.nextAfter(256); got != Never {
		t.Fatalf("calendar not drained: %d", got)
	}
}

// TestCalendarPastEventsIgnored: scheduling at or before now is a no-op
// (the present is not a future event).
func TestCalendarPastEventsIgnored(t *testing.T) {
	var c calendar
	c.schedule(50, 50)
	c.schedule(50, 7)
	if got := c.nextAfter(50); got != Never {
		t.Fatalf("past/present events surfaced: nextAfter = %d", got)
	}
}

// TestCalendarWraparound walks events across many wheel windows,
// exercising index wrap and the lazy clearing of passed bits.
func TestCalendarWraparound(t *testing.T) {
	var c calendar
	now := int64(0)
	for i := 0; i < 200; i++ {
		at := now + calWindow - 7 // just inside the window, wraps constantly
		c.schedule(now, at)
		if got := c.nextAfter(now); got != at {
			t.Fatalf("iter %d: nextAfter(%d) = %d, want %d", i, now, got, at)
		}
		now = at
	}
	if got := c.nextAfter(now); got != Never {
		t.Fatalf("calendar not drained after wrap walk: %d", got)
	}
}

// TestCalendarFarOverflow: events beyond the wheel window (very long L2
// latencies, deep bus queueing) overflow to the heap and migrate back as
// the wheel advances.
func TestCalendarFarOverflow(t *testing.T) {
	var c calendar
	events := []int64{calWindow + 100, 3 * calWindow, 10 * calWindow, calWindow + 100, 5}
	for _, at := range events {
		c.schedule(0, at)
	}
	want := []int64{5, calWindow + 100, 3 * calWindow, 10 * calWindow}
	now := int64(0)
	for _, w := range want {
		got := c.nextAfter(now)
		if got != w {
			t.Fatalf("nextAfter(%d) = %d, want %d", now, got, w)
		}
		now = got
	}
	if got := c.nextAfter(now); got != Never {
		t.Fatalf("calendar not drained: %d", got)
	}
	if !c.empty() {
		t.Fatal("calendar should be empty after consuming all events")
	}
}

// TestCalendarStaleEvents: events skipped past by a long advance (their
// cause was cancelled, e.g. a mispredict redirect overtaking a pending
// fetch-resume) are swept and never resurface a window later at the
// aliased index.
func TestCalendarStaleEvents(t *testing.T) {
	var c calendar
	c.schedule(0, 10)
	c.schedule(0, 20)
	// Jump far past both without consuming them (cancelled events).
	if got := c.nextAfter(5 * calWindow); got != Never {
		t.Fatalf("stale events resurfaced: %d", got)
	}
	// The aliased indices must be clean for new events.
	at := int64(5*calWindow + 10)
	c.schedule(5*calWindow, at)
	if got := c.nextAfter(5 * calWindow); got != at {
		t.Fatalf("nextAfter = %d, want %d", got, at)
	}
}

// TestCalendarFarNearInterleave: near events (inside the wheel window)
// and far events (overflow heap) scheduled interleaved surface in strict
// cycle order, including far events whose wheel migration happens while
// newer near events keep arriving.
func TestCalendarFarNearInterleave(t *testing.T) {
	var c calendar
	ref := calRef{}
	now := int64(0)
	sched := func(at int64) {
		c.schedule(now, at)
		if at > now+1 {
			ref.schedule(at)
		}
	}
	// Alternate near and far at increasing distances, including several
	// sharing one far cycle (coalesce) and a far event exactly at the
	// window boundary.
	for i := int64(1); i <= 8; i++ {
		sched(now + 2 + 3*i)                  // near cluster
		sched(now + calWindow + 100*i)        // far heap
		sched(now + i*calWindow)              // whole windows out
		sched(now + calWindow + 100*i)        // duplicate far cycle
		sched(now + calWindow + int64(1))     // boundary: first heap cycle
		sched(now + calWindow - int64(2*i+1)) // just inside the wheel
	}
	for {
		want := ref.nextAfter(now)
		got := c.nextAfter(now)
		if got != want {
			t.Fatalf("nextAfter(%d) = %d, want %d", now, got, want)
		}
		if want == Never {
			break
		}
		// Consuming an event can itself schedule new work (a fill
		// triggering a retry): keep the heap churning while draining.
		if want%3 == 0 {
			c.schedule(want, want+calWindow+7)
			ref.schedule(want + calWindow + 7)
		}
		now = want
	}
	if !c.empty() {
		t.Fatal("calendar not empty after drain")
	}
}

// TestCalendarCancelReinsert: a far event whose cause was cancelled (the
// machine jumps past it without consuming) is swept on advance, and
// re-inserting the same absolute cycle later — now near, at the aliased
// wheel index — behaves like a fresh event, ordered against both newer
// and older survivors.
func TestCalendarCancelReinsert(t *testing.T) {
	var c calendar
	// One far event that will be cancelled, one that survives.
	c.schedule(0, 2*calWindow+50)
	c.schedule(0, 3*calWindow+10)
	// Jump over the first (cancellation by fast-forward past it).
	now := int64(2*calWindow + 100)
	if got := c.nextAfter(now); got != 3*calWindow+10 {
		t.Fatalf("survivor: nextAfter = %d, want %d", got, int64(3*calWindow+10))
	}
	// Re-insert the cancelled event's aliased wheel index at a new
	// absolute cycle (same cycle&calMask as the swept one) plus a later
	// far event; ordering must be by absolute cycle, no resurrection.
	reinsert := int64(3*calWindow + 50) // aliases 2*calWindow+50
	c.schedule(now, reinsert)
	c.schedule(now, 5*calWindow)
	want := []int64{3*calWindow + 10, reinsert, 5 * calWindow}
	for _, w := range want {
		got := c.nextAfter(now)
		if got != w {
			t.Fatalf("nextAfter(%d) = %d, want %d", now, got, w)
		}
		now = got
	}
	if got := c.nextAfter(now); got != Never {
		t.Fatalf("stale/cancelled event resurfaced: %d", got)
	}
	// Re-inserting an already-consumed cycle schedules it again (a new
	// event at an old index must not be mistaken for consumed state).
	c.schedule(now, now+10)
	if got := c.nextAfter(now); got != now+10 {
		t.Fatalf("re-inserted cycle: nextAfter = %d, want %d", got, now+10)
	}
}

// TestCalendarFarHeapOrdering stresses the overflow min-heap directly:
// hundreds of far events inserted in adversarial (descending,
// interleaved, duplicated) orders must drain in sorted order through
// the wheel as it advances, validated against the oracle.
func TestCalendarFarHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var c calendar
		ref := calRef{}
		now := int64(rng.Intn(10_000))
		n := 200 + rng.Intn(200)
		for i := 0; i < n; i++ {
			var at int64
			switch i % 3 {
			case 0: // descending ladder — worst case for a naive heap push
				at = now + int64(50-i%50+2)*calWindow
			case 1: // random far
				at = now + calWindow + 1 + int64(rng.Intn(40*calWindow))
			default: // near, to interleave wheel and heap at every drain step
				at = now + 2 + int64(rng.Intn(calWindow-2))
			}
			c.schedule(now, at)
			if at > now+1 {
				ref.schedule(at)
			}
		}
		// Drain with occasional long jumps (cancellation sweeps) mixed
		// into ordinary consumption.
		for {
			want := ref.nextAfter(now)
			got := c.nextAfter(now)
			if got != want {
				t.Fatalf("trial %d: nextAfter(%d) = %d, want %d", trial, now, got, want)
			}
			if want == Never {
				break
			}
			if rng.Intn(8) == 0 {
				now = want + int64(rng.Intn(3*calWindow)) // skip a stretch
			} else {
				now = want
			}
		}
		if len(c.far) != 0 {
			t.Fatalf("trial %d: %d far events left after drain", trial, len(c.far))
		}
	}
}

// TestCalendarAgainstReference drives random schedules and queries
// against a brute-force oracle, including adversarial clustering around
// window boundaries.
func TestCalendarAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var c calendar
		ref := calRef{}
		now := int64(rng.Intn(1000))
		for step := 0; step < 400; step++ {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				var at int64
				switch rng.Intn(4) {
				case 0: // near future
					at = now + 1 + int64(rng.Intn(16))
				case 1: // mid-window
					at = now + int64(rng.Intn(calWindow))
				case 2: // window boundary neighbourhood
					at = now + calWindow + int64(rng.Intn(5)) - 2
				default: // far future
					at = now + int64(rng.Intn(4*calWindow))
				}
				c.schedule(now, at)
				if at > now+1 {
					// The calendar's contract drops next-cycle events
					// (Step's unconditional Tick covers them).
					ref.schedule(at)
				}
			}
			want := ref.nextAfter(now)
			if got := c.nextAfter(now); got != want {
				t.Fatalf("trial %d step %d: nextAfter(%d) = %d, want %d", trial, step, now, got, want)
			}
			// Advance: sometimes tick, sometimes jump (fast-forward),
			// sometimes jump past events (cancellation).
			switch rng.Intn(3) {
			case 0:
				now++
			case 1:
				if want != Never {
					now = want
				} else {
					now += int64(rng.Intn(100))
				}
			default:
				now += int64(rng.Intn(2 * calWindow))
			}
		}
	}
}
