package core

// The speculative-DAE extension (config.Speculation): the access slice
// hoists a fraction of its loads past may-alias and control dependences.
// A hoisted load's line is prefetched functionally at fetch time — the
// run-ahead benefit — and with probability MisspecProb the hoist was
// wrong: the thread's fetch stream squashes and refetches after
// squashCycles. Independently, every lodEvery fetched instructions a
// context hits a loss-of-decoupling event — a value produced in the
// execute slice feeds an address computation — and fetch must hold
// until the context's execute queue drains, collapsing the AP/EP slip.
//
// Both draws come from splitmix64-style hashes of (PC, sequence number,
// context ID): no RNG state, so results are bit-identical across
// execution modes, runs and GOMAXPROCS settings.

import "repro/internal/config"

// Salts separating the two independent draws made per speculative load.
const (
	saltClassify = 0x9E3779B97F4A7C15 // is this load hoisted speculatively?
	saltMisspec  = 0xD1B54A32D192ED03 // did the hoist misspeculate?
)

// spec is the core's cached, resolved view of config.Speculation.
type spec struct {
	enabled       bool
	specThresh    uint64 // SpecLoadFrac scaled to the uint64 hash range
	misspecThresh uint64 // MisspecProb scaled likewise
	squashCycles  int64
	lodEvery      int64
}

// newSpec resolves the configuration (nil = all-off zero value).
func newSpec(s *config.Speculation) spec {
	if s == nil {
		return spec{}
	}
	sq := s.SquashCycles
	if sq == 0 {
		sq = config.DefaultSquashCycles
	}
	return spec{
		enabled:       true,
		specThresh:    fracThresh(s.SpecLoadFrac),
		misspecThresh: fracThresh(s.MisspecProb),
		squashCycles:  sq,
		lodEvery:      s.LoDEvery,
	}
}

// fracThresh maps a probability in [0,1] onto the uint64 hash range, so
// "hash < threshold" fires with that probability over uniform hashes.
// An exact 1.0 is shaved by 2⁻⁶⁴ (the maps-to-everything threshold does
// not exist); no figure sweeps anywhere near it.
func fracThresh(f float64) uint64 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return ^uint64(0)
	}
	// Two power-of-two scalings: exact, and the product stays below 2⁶⁴.
	return uint64(f * float64(1<<63) * 2)
}

// specHash mixes one load's identity into a uniform draw (splitmix64
// finalizer over the salted identity).
func specHash(pc uint64, seq int64, tid int, salt uint64) uint64 {
	x := pc ^ uint64(seq)*0x9E3779B97F4A7C15 ^ uint64(tid)<<48 ^ salt
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// specFetchLoad applies the speculative-load model to a just-fetched
// load: classify it, prefetch its line functionally when hoisted, and
// draw the misspeculation verdict. It returns true when the load
// squashed the thread (caller stops fetching it this cycle).
func (c *Core) specFetchLoad(ctx *Context, d *DynInst) bool {
	if specHash(d.PC, d.Seq, ctx.ID, saltClassify) >= c.spec.specThresh {
		return false
	}
	c.col.SpeculativeLoads++
	// The hoisted access runs far enough ahead to have its line resident
	// by the time the timed access probes: warm it functionally (tags
	// and LRU only, no ports/MSHRs/latency — the same path the sampling
	// warp uses).
	c.mem.Warm(d.Addr, false)
	if specHash(d.PC, d.Seq, ctx.ID, saltMisspec) >= c.spec.misspecThresh {
		return false
	}
	// Misspeculation: everything fetched past the load is wrong and
	// refetches. In a correct-path trace model the penalty is a fetch
	// freeze; the calendar entry keeps fast-forwarding exact across it.
	c.col.Squashes++
	ctx.FetchResumeAt = c.now + c.spec.squashCycles
	c.cal.schedule(c.now, ctx.FetchResumeAt)
	return true
}

// specFetched advances the loss-of-decoupling countdown for one fetched
// instruction, arming the fetch gate when the period elapses.
func (c *Core) specFetched(ctx *Context) bool {
	if c.spec.lodEvery <= 0 {
		return false
	}
	if ctx.sinceLoD++; ctx.sinceLoD < c.spec.lodEvery {
		return false
	}
	ctx.sinceLoD = 0
	ctx.lodPending = true
	return true
}
