package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Trace-building helpers.

func intOp(pc uint64, d, s1, s2 int) isa.Inst {
	return isa.Inst{PC: pc, Op: isa.OpIntALU, Dest: isa.IntReg(d), Src1: isa.IntReg(s1), Src2: isa.IntReg(s2)}
}

func fpOp(pc uint64, d, s1, s2 int) isa.Inst {
	return isa.Inst{PC: pc, Op: isa.OpFPALU, Dest: isa.FPReg(d), Src1: isa.FPReg(s1), Src2: isa.FPReg(s2)}
}

func fpLoad(pc uint64, d, base int, addr uint64) isa.Inst {
	return isa.Inst{PC: pc, Op: isa.OpLoad, Dest: isa.FPReg(d), Src1: isa.IntReg(base), Src2: isa.NoReg, Addr: addr, Size: 8}
}

func intLoad(pc uint64, d, base int, addr uint64) isa.Inst {
	return isa.Inst{PC: pc, Op: isa.OpLoad, Dest: isa.IntReg(d), Src1: isa.IntReg(base), Src2: isa.NoReg, Addr: addr, Size: 8}
}

func fpStore(pc uint64, data, base int, addr uint64) isa.Inst {
	return isa.Inst{PC: pc, Op: isa.OpStore, Dest: isa.NoReg, Src1: isa.FPReg(data), Src2: isa.IntReg(base), Addr: addr, Size: 8}
}

func brInst(pc uint64, cond int, taken bool) isa.Inst {
	return isa.Inst{PC: pc, Op: isa.OpBranch, Dest: isa.NoReg, Src1: isa.IntReg(cond), Src2: isa.NoReg, Taken: taken}
}

// runTrace builds a single-thread core over the given instructions, runs
// it to completion and returns it.
func runTrace(t *testing.T, m config.Machine, insts []isa.Inst) *Core {
	t.Helper()
	c, err := New(m, []trace.Reader{trace.Slice(insts)})
	if err != nil {
		t.Fatal(err)
	}
	if _, drained := c.Run(1_000_000); !drained {
		t.Fatal("machine did not drain (possible deadlock)")
	}
	return c
}

func oneThread() config.Machine { return config.Figure2(1) }

// ---------------------------------------------------------------------------
// Basic pipeline behaviour.

func TestSingleInstruction(t *testing.T) {
	c := runTrace(t, oneThread(), []isa.Inst{intOp(0x0, 1, 2, 3)})
	if c.Collector().Graduated != 1 {
		t.Fatalf("graduated %d", c.Collector().Graduated)
	}
	// fetch@1, dispatch@2, issue@3, graduate@4.
	if c.Now() != 4 {
		t.Fatalf("completed at cycle %d, want 4", c.Now())
	}
	if c.Collector().GraduatedByOp[isa.OpIntALU] != 1 {
		t.Fatal("per-op graduation miscounted")
	}
}

func TestEveryInstructionGraduates(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts, intOp(uint64(i*4), 1+(i%8), 2, 3))
	}
	c := runTrace(t, oneThread(), insts)
	if got := c.Collector().Graduated; got != 200 {
		t.Fatalf("graduated %d, want 200", got)
	}
}

func TestIndependentIntThroughput(t *testing.T) {
	// Independent int ops: the AP should sustain ~4/cycle (its width),
	// bounded below by fetch stop conditions.
	var insts []isa.Inst
	for i := 0; i < 4000; i++ {
		insts = append(insts, intOp(uint64(i%32*4), 1+(i%8), 9+(i%4), 13+(i%4)))
	}
	c := runTrace(t, oneThread(), insts)
	ipc := c.Collector().IPC()
	if ipc < 3.5 || ipc > 4.01 {
		t.Fatalf("independent int IPC = %.2f, want ~4", ipc)
	}
}

func TestDependentIntChainSerializes(t *testing.T) {
	// r1 = r1 + r1 repeated: one per cycle at best.
	var insts []isa.Inst
	for i := 0; i < 1000; i++ {
		insts = append(insts, intOp(uint64(i%16*4), 1, 1, 1))
	}
	c := runTrace(t, oneThread(), insts)
	ipc := c.Collector().IPC()
	if ipc > 1.01 {
		t.Fatalf("dependent chain IPC = %.2f, want <=1", ipc)
	}
	if ipc < 0.9 {
		t.Fatalf("dependent chain IPC = %.2f, too low", ipc)
	}
}

func TestFPChainLatencyBound(t *testing.T) {
	// A single dependent FP chain issues one op per EPLatency cycles.
	var insts []isa.Inst
	for i := 0; i < 1000; i++ {
		insts = append(insts, fpOp(uint64(i%16*4), 0, 0, 0))
	}
	c := runTrace(t, oneThread(), insts)
	ipc := c.Collector().IPC()
	want := 1.0 / float64(oneThread().EPLatency)
	if ipc > want*1.05 || ipc < want*0.9 {
		t.Fatalf("FP chain IPC = %.3f, want ~%.3f", ipc, want)
	}
}

func TestFourFPChainsSaturateLatency(t *testing.T) {
	// Four independent chains cover the 4-cycle EP latency: ~1 op/cycle.
	var insts []isa.Inst
	for i := 0; i < 4000; i++ {
		insts = append(insts, fpOp(uint64(i%16*4), i%4, i%4, i%4))
	}
	c := runTrace(t, oneThread(), insts)
	ipc := c.Collector().IPC()
	if ipc < 0.9 || ipc > 1.05 {
		t.Fatalf("4-chain FP IPC = %.3f, want ~1", ipc)
	}
}

// ---------------------------------------------------------------------------
// Memory behaviour.

func TestLoadHitLatency(t *testing.T) {
	// Prime a line, then hit it. The second load's address register
	// depends on the first load's data, so the in-order AP cannot start
	// it before the fill completes (a decoupled AP would otherwise race
	// ahead and turn the "hit" into a secondary miss).
	insts := []isa.Inst{
		intLoad(0x0, 4, 1, 0x1000), // cold miss primes the line
		intOp(0x4, 5, 4, 4),        // serializes the AP on the miss data
		intLoad(0x8, 6, 5, 0x1008), // hit on the primed line
	}
	c := runTrace(t, oneThread(), insts)
	if c.Collector().Graduated != 3 {
		t.Fatal("not all graduated")
	}
	st := c.Mem().Stats()
	if st.LoadAccesses != 2 || st.LoadMisses != 1 {
		t.Fatalf("mem stats = %+v", st)
	}
	if st.SecondaryMisses != 0 {
		t.Fatalf("unexpected merge: %+v", st)
	}
}

func TestLoadMissTiming(t *testing.T) {
	c := runTrace(t, oneThread(), []isa.Inst{fpLoad(0x0, 1, 1, 0x1000)})
	// issue@3, access@4: probe(1)+req(1)+L2(16)+xfer(2) → data@24,
	// graduate@24.
	if c.Now() != 24 {
		t.Fatalf("single miss completed at %d, want 24", c.Now())
	}
}

func TestPerceivedLatencySampledOnce(t *testing.T) {
	insts := []isa.Inst{
		fpLoad(0x0, 1, 1, 0x1000),
		fpOp(0x4, 2, 1, 1), // first consumer: stalls ~full miss latency
		fpOp(0x8, 3, 1, 2), // second consumer: must not add a sample
	}
	c := runTrace(t, oneThread(), insts)
	ps := c.Collector().PerceivedFP
	if ps.Count != 1 {
		t.Fatalf("FP samples = %d, want 1", ps.Count)
	}
	// The consumer was ready from cycle 4; data arrived at 24. It should
	// have perceived nearly the whole miss.
	if ps.Sum < 15 || ps.Sum > 21 {
		t.Fatalf("perceived = %d cycles, want ~19", ps.Sum)
	}
	if c.Collector().PerceivedInt.Count != 0 {
		t.Fatal("int sample recorded for an fp load")
	}
}

func TestPerceivedLatencyZeroWhenHidden(t *testing.T) {
	// Enough independent work between load and consumer hides the miss.
	insts := []isa.Inst{fpLoad(0x0, 1, 1, 0x1000)}
	for i := 0; i < 120; i++ {
		insts = append(insts, intOp(uint64(0x100+i*4), 2+(i%6), 9, 10))
	}
	insts = append(insts, fpOp(0x800, 2, 1, 1))
	c := runTrace(t, oneThread(), insts)
	ps := c.Collector().PerceivedFP
	if ps.Count != 1 {
		t.Fatalf("samples = %d, want 1", ps.Count)
	}
	if ps.Sum != 0 {
		t.Fatalf("perceived = %d, want 0 (fully hidden)", ps.Sum)
	}
}

func TestIntLoadPerceivedSeparately(t *testing.T) {
	insts := []isa.Inst{
		intLoad(0x0, 4, 1, 0x2000),
		intOp(0x4, 5, 4, 4),
	}
	c := runTrace(t, oneThread(), insts)
	if c.Collector().PerceivedInt.Count != 1 {
		t.Fatalf("int samples = %d, want 1", c.Collector().PerceivedInt.Count)
	}
	if c.Collector().PerceivedFP.Count != 0 {
		t.Fatal("fp sample for an int load")
	}
}

func TestHitsNotSampled(t *testing.T) {
	// Serialize through the AP so the second load truly hits (see
	// TestLoadHitLatency); the hit's consumer must not be sampled.
	insts := []isa.Inst{
		intLoad(0x0, 4, 1, 0x1000), // miss (sampled via its consumer)
		intOp(0x4, 5, 4, 4),        // consumer of the miss
		fpLoad(0x8, 3, 5, 0x1010),  // hit on the primed line: not sampled
		fpOp(0xc, 4, 3, 3),         // consumer of the hit
	}
	c := runTrace(t, oneThread(), insts)
	if got := c.Collector().PerceivedInt.Count; got != 1 {
		t.Fatalf("int samples = %d, want 1", got)
	}
	if got := c.Collector().PerceivedFP.Count; got != 0 {
		t.Fatalf("fp samples = %d, want 0 (hits excluded)", got)
	}
	if got := c.Mem().Stats().SecondaryMisses; got != 0 {
		t.Fatalf("unexpected merge (%d)", got)
	}
}

// ---------------------------------------------------------------------------
// Stores and the SAQ.

func TestStoreWaitsForData(t *testing.T) {
	// The store's fp data comes from a long FP chain; it must graduate
	// after the chain completes, not before.
	insts := []isa.Inst{
		fpOp(0x0, 1, 1, 1),
		fpOp(0x4, 1, 1, 1),
		fpOp(0x8, 1, 1, 1),
		fpStore(0xc, 1, 2, 0x3000),
	}
	c := runTrace(t, oneThread(), insts)
	if c.Collector().Graduated != 4 {
		t.Fatal("not drained")
	}
	if got := c.Mem().Stats().StoreAccesses; got != 1 {
		t.Fatalf("store accesses = %d", got)
	}
}

func TestLoadWaitsForConflictingStore(t *testing.T) {
	m := oneThread()
	m.StoreForwarding = false
	// Store to X (data from slow FP chain), then load from X: the load
	// must not complete before the store commits.
	insts := []isa.Inst{
		fpOp(0x0, 1, 1, 1), // 4-cycle producer
		fpStore(0x4, 1, 2, 0x4000),
		fpLoad(0x8, 3, 2, 0x4000),
		fpOp(0xc, 4, 3, 3),
	}
	c := runTrace(t, m, insts)
	if c.Collector().StoreForwards != 0 {
		t.Fatal("forwarding happened with forwarding disabled")
	}
	if c.Collector().LoadConflictStalls == 0 {
		t.Fatal("no conflict stalls recorded")
	}
	// The load must see the store's write: store commits (write-allocate
	// miss), load then hits or merges; both count as accesses.
	st := c.Mem().Stats()
	if st.LoadAccesses != 1 || st.StoreAccesses != 1 {
		t.Fatalf("mem stats = %+v", st)
	}
}

func TestStoreForwardingBypassesCache(t *testing.T) {
	m := oneThread()
	m.StoreForwarding = true
	// An older long miss keeps the ROB head occupied so the store cannot
	// graduate; meanwhile its data becomes ready and the conflicting load
	// must take it by forwarding instead of waiting for the commit.
	insts := []isa.Inst{
		fpLoad(0x0, 5, 3, 0x9000), // slow miss pins the ROB head
		fpOp(0x4, 1, 1, 1),        // store data, ready quickly
		fpStore(0x8, 1, 2, 0x4000),
		fpLoad(0xc, 3, 2, 0x4000), // conflicting load: forwarded
		fpOp(0x10, 4, 3, 3),
	}
	c := runTrace(t, m, insts)
	if c.Collector().StoreForwards != 1 {
		t.Fatalf("forwards = %d, want 1", c.Collector().StoreForwards)
	}
	// Only the pinning load touches the cache; the forwarded load never
	// does.
	if got := c.Mem().Stats().LoadAccesses; got != 1 {
		t.Fatalf("load accesses = %d, want 1", got)
	}
}

func TestNonConflictingLoadBypassesStore(t *testing.T) {
	// A load to a different address must NOT wait for the pending store.
	m := oneThread()
	insts := []isa.Inst{
		fpOp(0x0, 1, 1, 1),
		fpOp(0x4, 1, 1, 1),
		fpOp(0x8, 1, 1, 1), // slow chain producing store data
		fpStore(0xc, 1, 2, 0x4000),
		fpLoad(0x10, 3, 2, 0x8000), // unrelated address
	}
	c := runTrace(t, m, insts)
	if c.Collector().LoadConflictStalls != 0 {
		t.Fatal("non-conflicting load stalled on the SAQ")
	}
}

// ---------------------------------------------------------------------------
// Branches.

func TestPredictableLoopBranches(t *testing.T) {
	// A hot loop branch (taken 15x, not-taken once, repeatedly) is
	// learned by the 2-bit BHT: mispredict rate must be low.
	var insts []isa.Inst
	for iter := 0; iter < 800; iter++ {
		insts = append(insts, intOp(0x0, 1, 2, 3))
		insts = append(insts, brInst(0x4, 1, iter%16 != 15))
	}
	c := runTrace(t, oneThread(), insts)
	rate := c.Collector().MispredictRate()
	if rate > 0.15 {
		t.Fatalf("mispredict rate %.2f too high for a loop branch", rate)
	}
	if c.Collector().Branches != 800 {
		t.Fatalf("resolved %d branches", c.Collector().Branches)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	// An always-mispredicted pattern (alternating) costs fetch cycles:
	// IPC must drop well below the no-branch case.
	var noBr, withBr []isa.Inst
	for i := 0; i < 2000; i++ {
		noBr = append(noBr, intOp(uint64(i%8*4), 1+(i%4), 9, 10))
	}
	for i := 0; i < 1000; i++ {
		withBr = append(withBr, intOp(0x0, 1+(i%4), 9, 10))
		withBr = append(withBr, brInst(0x20, 1, i%2 == 0)) // alternating: defeats 2-bit BHT
	}
	base := runTrace(t, oneThread(), noBr).Collector().IPC()
	br := runTrace(t, oneThread(), withBr)
	if br.Collector().MispredictRate() < 0.4 {
		t.Fatalf("alternating branch mispredict rate = %.2f, expected high",
			br.Collector().MispredictRate())
	}
	if br.Collector().IPC() > base*0.7 {
		t.Fatalf("mispredicts barely hurt: %.2f vs %.2f", br.Collector().IPC(), base)
	}
}

func TestSpeculationLimit(t *testing.T) {
	// More in-flight branches than the limit: the machine must still
	// drain correctly (fetch throttles at 4 unresolved branches).
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, brInst(uint64(i%8*4), 1, false))
	}
	c := runTrace(t, oneThread(), insts)
	if c.Collector().Graduated != 64 {
		t.Fatalf("graduated %d, want 64", c.Collector().Graduated)
	}
}

// ---------------------------------------------------------------------------
// Decoupling.

// slipTrace builds a loop of (fp load miss → fp consumer) pairs padded
// with address arithmetic: a decoupled AP runs ahead and hides the misses,
// a non-decoupled machine eats them.
func slipTrace(n int) []isa.Inst {
	var insts []isa.Inst
	addr := uint64(0)
	for i := 0; i < n; i++ {
		pc := uint64(i % 4 * 16)
		insts = append(insts,
			intOp(pc, 1, 1, 9),             // bump address register
			fpLoad(pc+4, 1+(i%4), 1, addr), // streaming miss
			fpOp(pc+8, 5+(i%4), 1+(i%4), 5+(i%4)),
			intOp(pc+12, 2, 2, 9),
		)
		addr += 32 // new line every iteration: always misses
	}
	return insts
}

func TestDecouplingHidesMissLatency(t *testing.T) {
	m := oneThread().WithL2Latency(64)
	dec := runTrace(t, m, slipTrace(2000))
	non := runTrace(t, m.NonDecoupled(), slipTrace(2000))

	dIPC, nIPC := dec.Collector().IPC(), non.Collector().IPC()
	if dIPC < nIPC*1.5 {
		t.Fatalf("decoupling speedup too small: %.3f vs %.3f", dIPC, nIPC)
	}
	dPerc := dec.Collector().PerceivedFP.Mean()
	nPerc := non.Collector().PerceivedFP.Mean()
	if dPerc > nPerc/2 {
		t.Fatalf("decoupled perceived %.1f not far below non-decoupled %.1f", dPerc, nPerc)
	}
}

func TestNonDecoupledNoSlip(t *testing.T) {
	// In non-decoupled mode the AP must not run ahead: with a blocked FP
	// chain at the head, later AP instructions cannot issue. We detect
	// this via IPC on an EP-serialized trace with abundant AP work after.
	var insts []isa.Inst
	for i := 0; i < 500; i++ {
		insts = append(insts, fpOp(0x0, 1, 1, 1)) // serial chain, 4 cycles each
		insts = append(insts, intOp(0x4, 2, 3, 4))
		insts = append(insts, intOp(0x8, 3, 3, 4))
		insts = append(insts, intOp(0xc, 4, 3, 4))
	}
	dec := runTrace(t, oneThread(), insts)
	non := runTrace(t, oneThread().NonDecoupled(), insts)
	// Decoupled: AP work overlaps the FP chain fully → IPC ≈ 1.0
	// (4 insts per 4-cycle chain step). Non-decoupled: the int ops issue
	// only after each chain op → same in this case. The difference shows
	// when AP work precedes the chain op of the NEXT iteration... in all
	// cases decoupled must be at least as fast.
	if dec.Collector().IPC()+1e-9 < non.Collector().IPC() {
		t.Fatalf("decoupled slower than non-decoupled: %.3f vs %.3f",
			dec.Collector().IPC(), non.Collector().IPC())
	}
}

// ---------------------------------------------------------------------------
// Multithreading.

func TestSMTThroughputScales(t *testing.T) {
	mk := func() []isa.Inst {
		// FP-chain-bound workload: single thread leaves EP slots idle.
		var insts []isa.Inst
		for i := 0; i < 3000; i++ {
			insts = append(insts, fpOp(uint64(i%8*4), i%2, i%2, i%2))
			insts = append(insts, intOp(0x40, 1+(i%4), 9, 10))
		}
		return insts
	}
	run := func(threads int) float64 {
		srcs := make([]trace.Reader, threads)
		for i := range srcs {
			srcs[i] = trace.Slice(mk())
		}
		c, err := New(config.Figure2(threads), srcs)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Run(5_000_000); !ok {
			t.Fatal("did not drain")
		}
		return c.Collector().IPC()
	}
	one := run(1)
	three := run(3)
	if three < one*2.2 {
		t.Fatalf("3-thread speedup too small: %.2f vs %.2f", three, one)
	}
}

func TestIssueSlotAccounting(t *testing.T) {
	c := runTrace(t, oneThread(), slipTrace(500))
	col := c.Collector()
	for u := 0; u < isa.NumUnits; u++ {
		s := col.Slots[u]
		var wasted float64
		for _, w := range s.Wasted {
			wasted += w
		}
		total := float64(s.Issued) + wasted
		if diff := total - float64(s.Total); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("unit %v: issued(%d)+wasted(%.1f) != total(%d)",
				isa.Unit(u), s.Issued, wasted, s.Total)
		}
	}
}

func TestSingleThreadEPWaitsOnFU(t *testing.T) {
	// Paper Figure 3: with one thread, the dominant EP waste is waiting
	// for FU results (the serial FP chains).
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts, fpOp(uint64(i%8*4), i%2, i%2, i%2))
	}
	c := runTrace(t, oneThread(), insts)
	s := c.Collector().Slots[isa.EP]
	if s.Wasted[1] >= s.Wasted[2] { // WasteMem < WasteFU expected
		t.Fatalf("EP waste: mem=%.0f fu=%.0f, want FU-dominated", s.Wasted[1], s.Wasted[2])
	}
}

// ---------------------------------------------------------------------------
// Robustness.

func TestEmptyTrace(t *testing.T) {
	c := runTrace(t, oneThread(), nil)
	if c.Collector().Graduated != 0 {
		t.Fatal("graduated instructions from an empty trace")
	}
}

func TestThreadCountMismatch(t *testing.T) {
	_, err := New(config.Figure2(2), []trace.Reader{trace.Slice(nil)})
	if err == nil {
		t.Fatal("accepted 1 source for 2 threads")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	m := config.Figure2(1)
	m.IQSize = 0
	_, err := New(m, []trace.Reader{trace.Slice(nil)})
	if err == nil {
		t.Fatal("accepted invalid machine")
	}
}

func TestRunCycleLimit(t *testing.T) {
	// A trace the machine cannot finish in 3 cycles must report
	// not-drained rather than hanging.
	c, err := New(oneThread(), []trace.Reader{trace.Slice(slipTrace(100))})
	if err != nil {
		t.Fatal(err)
	}
	if _, drained := c.Run(3); drained {
		t.Fatal("claimed to drain in 3 cycles")
	}
}

func TestDrainWithTinyQueues(t *testing.T) {
	// Stress back-pressure paths: tiny queues must still drain correctly.
	m := oneThread()
	m.IQSize = 2
	m.APQSize = 2
	m.SAQSize = 1
	m.ROBSize = 4
	m.APRegs = 34
	m.EPRegs = 34
	m.FetchBufSize = 8
	var insts []isa.Inst
	for i := 0; i < 300; i++ {
		switch i % 4 {
		case 0:
			insts = append(insts, fpLoad(0x0, 1, 1, uint64(i)*32))
		case 1:
			insts = append(insts, fpOp(0x4, 2, 1, 2))
		case 2:
			insts = append(insts, fpStore(0x8, 2, 1, uint64(i)*32))
		case 3:
			insts = append(insts, intOp(0xc, 1, 1, 9))
		}
	}
	c := runTrace(t, m, insts)
	if c.Collector().Graduated != 300 {
		t.Fatalf("graduated %d/300 with tiny queues", c.Collector().Graduated)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, float64) {
		c := runTrace(t, config.Figure2(1).WithL2Latency(64), slipTrace(1000))
		return c.Now(), c.Collector().Graduated, c.Collector().PerceivedFP.Mean()
	}
	c1, g1, p1 := run()
	c2, g2, p2 := run()
	if c1 != c2 || g1 != g2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", c1, g1, p1, c2, g2, p2)
	}
}
