package stats

import (
	"math"
	"testing"
)

// Hand-computed references for the sampling statistics. Tolerances are
// tight (1e-12): the formulas are closed-form and the inputs exact.

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

func TestSummarizeHandComputed(t *testing.T) {
	// Samples 1, 2, 3, 4: mean 2.5, sample variance ((1.5² + 0.5²)×2)/3
	// = 5/3, stderr = sqrt(5/3/4) = sqrt(5/12), CI = 1.96·sqrt(5/12).
	s := Summarize([]float64{1, 2, 3, 4})
	if !near(s.Mean, 2.5) {
		t.Errorf("mean = %v, want 2.5", s.Mean)
	}
	wantCI := 1.96 * math.Sqrt(5.0/12.0)
	if !near(s.CI, wantCI) {
		t.Errorf("CI = %v, want %v", s.CI, wantCI)
	}
	if s.Units != 4 {
		t.Errorf("units = %d, want 4", s.Units)
	}
}

func TestSummarizeTwoSamples(t *testing.T) {
	// Samples 2, 4: mean 3, variance (1+1)/1 = 2, stderr = 1,
	// CI = 1.96.
	s := Summarize([]float64{2, 4})
	if !near(s.Mean, 3) || !near(s.CI, 1.96) || s.Units != 2 {
		t.Errorf("got %+v, want mean 3, CI 1.96, units 2", s)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.Mean != 0 || s.CI != 0 || s.Units != 0 {
		t.Errorf("empty: %+v, want zeros", s)
	}
	// A single unit has a defined mean but no spread estimate.
	if s := Summarize([]float64{1.7}); !near(s.Mean, 1.7) || s.CI != 0 || s.Units != 1 {
		t.Errorf("single: %+v, want mean 1.7, CI 0", s)
	}
	// Zero variance: identical samples, CI exactly 0.
	if s := Summarize([]float64{2, 2, 2, 2, 2}); !near(s.Mean, 2) || s.CI != 0 || s.Units != 5 {
		t.Errorf("constant: %+v, want mean 2, CI 0", s)
	}
}

func TestSummarizeCPIHandComputed(t *testing.T) {
	// CPI samples 0.5, 1.0, 1.5: mean CPI 1.0 → IPC estimate 1.0.
	// Sample variance = (0.25+0+0.25)/2 = 0.25, stderr = sqrt(0.25/3),
	// CI_CPI = 1.96·sqrt(1/12); delta method divides by meanCPI² = 1.
	s := SummarizeCPI([]float64{0.5, 1.0, 1.5})
	if !near(s.Mean, 1.0) {
		t.Errorf("mean = %v, want 1", s.Mean)
	}
	wantCI := 1.96 * math.Sqrt(0.25/3.0)
	if !near(s.CI, wantCI) {
		t.Errorf("CI = %v, want %v", s.CI, wantCI)
	}
	if s.Units != 3 {
		t.Errorf("units = %d, want 3", s.Units)
	}
}

func TestSummarizeCPIDeltaMethod(t *testing.T) {
	// CPI samples 2, 4: mean CPI 3 → IPC 1/3; CI_CPI = 1.96 (see the
	// two-sample case) → CI_IPC = 1.96/9.
	s := SummarizeCPI([]float64{2, 4})
	if !near(s.Mean, 1.0/3.0) || !near(s.CI, 1.96/9.0) {
		t.Errorf("got mean %v CI %v, want 1/3 and 1.96/9", s.Mean, s.CI)
	}
}

func TestSummarizeCPIJensenDirection(t *testing.T) {
	// The whole point of estimating in the CPI domain: with varying unit
	// latencies, mean of per-unit IPCs overestimates aggregate IPC. The
	// CPI-domain estimate must come out strictly below the naive mean.
	cpis := []float64{0.5, 2.0} // IPCs 2.0 and 0.5
	naive := Summarize([]float64{2.0, 0.5}).Mean
	cpi := SummarizeCPI(cpis).Mean
	if !(cpi < naive) {
		t.Errorf("CPI-domain estimate %v not below naive IPC mean %v", cpi, naive)
	}
	if !near(cpi, 0.8) { // 1 / ((0.5+2)/2)
		t.Errorf("CPI-domain estimate = %v, want 0.8", cpi)
	}
}

func TestSummarizeCPIDegenerate(t *testing.T) {
	if s := SummarizeCPI(nil); s.Mean != 0 || s.CI != 0 || s.Units != 0 {
		t.Errorf("empty: %+v, want zeros", s)
	}
	if s := SummarizeCPI([]float64{0.25}); !near(s.Mean, 4) || s.CI != 0 || s.Units != 1 {
		t.Errorf("single: %+v, want mean 4, CI 0", s)
	}
}

func TestCollectorMergeSumsCycles(t *testing.T) {
	a := Collector{Cycles: 100, Graduated: 50}
	b := Collector{Cycles: 30, Graduated: 20}
	a.Merge(&b)
	if a.Cycles != 130 || a.Graduated != 70 {
		t.Errorf("merged cycles=%d graduated=%d, want 130/70", a.Cycles, a.Graduated)
	}
}
