// Package stats collects and reports the metrics the paper evaluates:
//
//   - IPC (graduated instructions per cycle);
//   - the issue-slot breakdown of Figure 3 — for each unit (AP, EP), each
//     issue slot per cycle is either useful work or wasted for one of four
//     reasons: waiting for an operand from memory, waiting for an operand
//     from a functional unit, other (structural) hazards, or wrong-path/
//     idle (no instruction available);
//   - the perceived load-miss latency of Figures 1 and 4 — one sample per
//     L1-missing load, the number of cycles its first consumer stalled at
//     the head of its issue stream (0 when decoupling delivered the data
//     in time), separated into FP and integer loads by the destination
//     register file;
//   - memory system counters (miss ratios, write-backs, bus utilization)
//     and branch prediction accuracy.
package stats

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
)

// WasteReason classifies a wasted issue slot (paper Figure 3 legend).
type WasteReason uint8

const (
	// WasteIdle: no instruction available to issue — fetch starvation,
	// mispredict recovery ("wrong-path instr. or idle" in the paper).
	WasteIdle WasteReason = iota
	// WasteMem: the stream head waits for an operand produced by an
	// in-flight load that missed in L1.
	WasteMem
	// WasteFU: the stream head waits for an operand still in a functional
	// unit pipeline (or an in-flight load hit).
	WasteFU
	// WasteOther: structural hazards — FU/port/MSHR/queue conflicts and
	// cross-unit program-order constraints in the non-decoupled machine.
	WasteOther
	numWasteReasons
)

// NumWasteReasons is the number of waste categories.
const NumWasteReasons = int(numWasteReasons)

func (w WasteReason) String() string {
	switch w {
	case WasteIdle:
		return "wrong-path/idle"
	case WasteMem:
		return "wait-memory"
	case WasteFU:
		return "wait-FU"
	case WasteOther:
		return "other"
	default:
		return fmt.Sprintf("waste(%d)", uint8(w))
	}
}

// UnitSlots aggregates issue-slot accounting for one processing unit.
type UnitSlots struct {
	// Issued counts slots that did useful work.
	Issued int64
	// Wasted[reason] accumulates wasted slots; fractional because a
	// cycle's wasted slots are split across the blocked threads' reasons.
	Wasted [NumWasteReasons]float64
	// Total is the number of slot-cycles offered (width × cycles).
	Total int64
}

// UsefulFrac returns the fraction of slots that issued instructions.
func (u UnitSlots) UsefulFrac() float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Issued) / float64(u.Total)
}

// WastedFrac returns the fraction of slots wasted for the given reason.
func (u UnitSlots) WastedFrac(r WasteReason) float64 {
	if u.Total == 0 {
		return 0
	}
	return u.Wasted[r] / float64(u.Total)
}

// LatencySample accumulates perceived-latency samples.
type LatencySample struct {
	Count int64
	Sum   int64
}

// Add records one sample.
func (l *LatencySample) Add(cycles int64) {
	l.Count++
	l.Sum += cycles
}

// Mean returns the average sample (0 when empty).
func (l LatencySample) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.Count)
}

// Merge folds another sample set into l.
func (l *LatencySample) Merge(o LatencySample) {
	l.Count += o.Count
	l.Sum += o.Sum
}

// Collector accumulates all run metrics. The zero value is ready to use;
// Reset clears it between the warm-up and measurement windows.
type Collector struct {
	// Cycles is the number of simulated cycles in the window.
	Cycles int64
	// Graduated is the number of instructions retired in the window.
	Graduated int64
	// GraduatedByOp breaks retirement down by operation class.
	GraduatedByOp [isa.NumOps]int64

	// Slots is the per-unit issue slot accounting.
	Slots [isa.NumUnits]UnitSlots

	// PerceivedFP and PerceivedInt are the perceived load-miss latency
	// samples for FP-destined and integer-destined loads.
	PerceivedFP, PerceivedInt LatencySample

	// Branches and Mispredicts count resolved conditional branches.
	Branches, Mispredicts int64

	// FetchedInsts counts instructions brought in by the fetch stage.
	FetchedInsts int64
	// DispatchStalls counts thread-cycles dispatch stopped on a full
	// resource (ROB, registers, queues).
	DispatchStalls int64
	// LoadConflictStalls counts cycles loads waited on an older SAQ store
	// with a matching address.
	LoadConflictStalls int64
	// StoreForwards counts loads satisfied by SAQ forwarding (ablation).
	StoreForwards int64

	// SpeculativeLoads, Squashes and LoDStalls instrument the
	// speculative-DAE extension (config.Speculation): loads hoisted
	// speculatively into the access slice, speculative loads that
	// misspeculated and squashed their thread's fetch stream, and
	// context-cycles fetch held at a loss-of-decoupling event waiting
	// for the execute queue to drain. All zero — and omitted from the
	// JSON encoding, pinning every non-speculative report hash — when
	// the extension is off.
	SpeculativeLoads int64 `json:",omitempty"`
	Squashes         int64 `json:",omitempty"`
	LoDStalls        int64 `json:",omitempty"`
}

// Reset zeroes the collector.
func (c *Collector) Reset() { *c = Collector{} }

// MergeCore folds another core's collector into c for CMP aggregate
// reporting: every counter sums, except Cycles — the cores tick in
// lockstep, so their cycle counts are identical and c keeps its own.
// Merge in fixed core order: the waste buckets are floats and summation
// order must be deterministic.
func (c *Collector) MergeCore(o *Collector) {
	c.Graduated += o.Graduated
	for i := range c.GraduatedByOp {
		c.GraduatedByOp[i] += o.GraduatedByOp[i]
	}
	for u := range c.Slots {
		c.Slots[u].Issued += o.Slots[u].Issued
		c.Slots[u].Total += o.Slots[u].Total
		for r := range c.Slots[u].Wasted {
			c.Slots[u].Wasted[r] += o.Slots[u].Wasted[r]
		}
	}
	c.PerceivedFP.Merge(o.PerceivedFP)
	c.PerceivedInt.Merge(o.PerceivedInt)
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
	c.FetchedInsts += o.FetchedInsts
	c.DispatchStalls += o.DispatchStalls
	c.LoadConflictStalls += o.LoadConflictStalls
	c.StoreForwards += o.StoreForwards
	c.SpeculativeLoads += o.SpeculativeLoads
	c.Squashes += o.Squashes
	c.LoDStalls += o.LoDStalls
}

// IPC returns graduated instructions per cycle.
func (c *Collector) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Graduated) / float64(c.Cycles)
}

// MispredictRate returns mispredicted branches / resolved branches.
func (c *Collector) MispredictRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.Branches)
}

// Perceived returns the combined (FP + integer) perceived-latency sample.
func (c *Collector) Perceived() LatencySample {
	s := c.PerceivedFP
	s.Merge(c.PerceivedInt)
	return s
}

// Report is an immutable snapshot of a finished run, including the memory
// subsystem counters captured at the end of the measurement window.
type Report struct {
	Collector
	Mem mem.Stats
	// BusUtilization is the fraction of measured cycles the L1's
	// downstream bus was busy.
	BusUtilization float64
	// Threads and L2Latency identify the configuration for table output.
	Threads   int
	Decoupled bool
	L2Latency int64
	// MemLevels reports the shared cache levels of a finite hierarchy
	// (per-level counters and downstream-bus utilization, top-down from
	// the L2). Nil for the default flat-L2 model — and omitted from the
	// JSON encoding, so default-model report hashes are unchanged.
	// On CMP machines the per-core private L1s lead the list (named
	// "c<i>.L1", carrying the coherence counters), followed by the
	// interconnect-owned levels.
	MemLevels []mem.LevelStats `json:",omitempty"`
	// Cores is the CMP core count; 0 (omitted, pinning single-core
	// report encodings) on the paper's single-core machine. Collector
	// counters and Mem are then aggregates over the cores, and Threads
	// is contexts per core.
	Cores int `json:",omitempty"`
	// PerCoreGraduated breaks retirement down by core on CMP machines
	// (nil on single-core machines).
	PerCoreGraduated []int64 `json:",omitempty"`
	// Sampled summarizes the per-unit IPC samples of a sampled-mode run
	// (mean, 95% confidence half-width, unit count). Nil — and omitted
	// from the JSON encoding, pinning exact-mode report hashes — for
	// exact and adaptive runs, whose counters cover every instruction.
	Sampled *Sampled `json:",omitempty"`
}

// String renders a human-readable multi-line summary.
func (r Report) String() string {
	var b strings.Builder
	mode := "decoupled"
	if !r.Decoupled {
		mode = "non-decoupled"
	}
	memDesc := fmt.Sprintf("L2=%d", r.L2Latency)
	if len(r.MemLevels) > 0 {
		memDesc = "mem=hierarchy"
	}
	if r.Cores > 1 {
		fmt.Fprintf(&b, "cores=%d ", r.Cores)
	}
	fmt.Fprintf(&b, "threads=%d mode=%s %s cycles=%d insts=%d IPC=%.3f\n",
		r.Threads, mode, memDesc, r.Cycles, r.Graduated, r.IPC())
	if s := r.Sampled; s != nil {
		fmt.Fprintf(&b, "sampled: IPC=%.3f ±%.3f (95%% CI, %d units, %d insts warped)\n",
			s.Mean, s.CI, s.Units, s.WarpedInsts)
	}
	fmt.Fprintf(&b, "perceived load-miss latency: fp=%.2f (n=%d) int=%.2f (n=%d) all=%.2f\n",
		r.PerceivedFP.Mean(), r.PerceivedFP.Count,
		r.PerceivedInt.Mean(), r.PerceivedInt.Count,
		r.Perceived().Mean())
	fmt.Fprintf(&b, "branches: %d mispredict=%.2f%%\n", r.Branches, 100*r.MispredictRate())
	if r.SpeculativeLoads > 0 || r.Squashes > 0 || r.LoDStalls > 0 {
		fmt.Fprintf(&b, "speculation: spec-loads=%d squashes=%d lod-stalls=%d\n",
			r.SpeculativeLoads, r.Squashes, r.LoDStalls)
	}
	fmt.Fprintf(&b, "L1: load-miss=%.2f%% store-miss=%.2f%% writebacks=%d bus-util=%.1f%%\n",
		100*r.Mem.LoadMissRatio(), 100*r.Mem.StoreMissRatio(), r.Mem.Writebacks, 100*r.BusUtilization)
	for _, lv := range r.MemLevels {
		fmt.Fprintf(&b, "%s: miss=%.2f%% secondary=%d write-allocs=%d writebacks=%d bus-util=%.1f%%\n",
			lv.Name, 100*lv.MissRatio(), lv.SecondaryMisses, lv.WriteAllocates, lv.Writebacks, 100*lv.BusUtilization)
	}
	for u := 0; u < isa.NumUnits; u++ {
		s := r.Slots[u]
		fmt.Fprintf(&b, "%s slots: useful=%.1f%% mem=%.1f%% fu=%.1f%% other=%.1f%% idle=%.1f%%\n",
			isa.Unit(u),
			100*s.UsefulFrac(),
			100*s.WastedFrac(WasteMem),
			100*s.WastedFrac(WasteFU),
			100*s.WastedFrac(WasteOther),
			100*s.WastedFrac(WasteIdle))
	}
	return b.String()
}

// InstMix returns the fraction of graduated instructions in each class.
func (r Report) InstMix() [isa.NumOps]float64 {
	var mix [isa.NumOps]float64
	if r.Graduated == 0 {
		return mix
	}
	for i := range mix {
		mix[i] = float64(r.GraduatedByOp[i]) / float64(r.Graduated)
	}
	return mix
}
