package stats

import "math"

// This file holds the statistics behind SMARTS-style systematic sampling
// (Wenisch/Wunderlich et al.): a sampled run measures many short detailed
// units spread evenly over the instruction stream and reports the mean
// per-unit IPC with a confidence interval, instead of simulating every
// instruction in detail. The aggregation here is pure arithmetic — the
// sampling schedule itself lives in the sim package.

// Sampled summarizes the per-unit samples of a sampled run in IPC terms.
// It is attached to Report as a pointer field so exact-mode report
// encodings are byte-for-byte unchanged.
type Sampled struct {
	// Mean is the IPC estimate: the inverse of the mean per-unit CPI.
	// Units hold (near-)equal instruction counts, so mean CPI is the
	// unbiased cycles-per-instruction estimator and its inverse is the
	// aggregate instructions-over-cycles of the measured units — where a
	// plain mean of per-unit IPCs would be Jensen-biased high whenever
	// unit latencies vary.
	Mean float64
	// CI is the half-width of the 95% confidence interval around Mean
	// (z = 1.96, mapped from the CPI domain by the delta method; 0 when
	// fewer than two units were measured or the samples have zero
	// variance).
	CI float64
	// Units is the number of measured units.
	Units int
	// WarpedInsts counts the instructions advanced by the functional warp
	// between units (architectural state only, no timing).
	WarpedInsts int64 `json:",omitempty"`
}

// z95 is the two-sided 95% normal quantile used for the CI half-width.
const z95 = 1.96

// Summarize computes the mean and 95% confidence half-width of a sample
// set: CI = z * s/sqrt(n) with s the Bessel-corrected sample standard
// deviation. Degenerate inputs are well-defined: an empty set is all
// zeros, a single sample has CI 0, and identical samples have CI 0.
func Summarize(samples []float64) Sampled {
	n := len(samples)
	if n == 0 {
		return Sampled{}
	}
	var sum float64
	for _, x := range samples {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Sampled{Mean: mean, Units: 1}
	}
	var ss float64
	for _, x := range samples {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	return Sampled{
		Mean:  mean,
		CI:    z95 * math.Sqrt(variance/float64(n)),
		Units: n,
	}
}

// SummarizeCPI summarizes per-unit CPI samples and maps the estimate into
// the IPC domain: Mean = 1/mean(CPI) and CI = CI(CPI)/mean(CPI)² (the
// first-order delta method for the reciprocal). A zero-mean (empty) input
// yields the zero Sampled.
func SummarizeCPI(cpis []float64) Sampled {
	s := Summarize(cpis)
	if s.Mean == 0 {
		return Sampled{Units: s.Units}
	}
	return Sampled{
		Mean:  1 / s.Mean,
		CI:    s.CI / (s.Mean * s.Mean),
		Units: s.Units,
	}
}

// Merge folds another measured unit's collector into c, summing every
// counter *including* Cycles: unlike MergeCore (which merges lockstep
// cores sharing one clock), sampled units are disjoint windows of the
// same machine's time, so their cycle counts add. Merge in unit order:
// the waste buckets are floats and summation order must be
// deterministic.
func (c *Collector) Merge(o *Collector) {
	c.Cycles += o.Cycles
	c.MergeCore(o)
}
