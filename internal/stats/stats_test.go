package stats

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestWasteReasonStrings(t *testing.T) {
	for r := WasteReason(0); int(r) < NumWasteReasons; r++ {
		if strings.HasPrefix(r.String(), "waste(") {
			t.Errorf("reason %d has no name", r)
		}
	}
	if !strings.HasPrefix(WasteReason(99).String(), "waste(") {
		t.Error("unknown reason not flagged")
	}
}

func TestUnitSlotsFractions(t *testing.T) {
	u := UnitSlots{Issued: 30, Total: 100}
	u.Wasted[WasteMem] = 20
	u.Wasted[WasteFU] = 40
	u.Wasted[WasteIdle] = 10
	if got := u.UsefulFrac(); got != 0.3 {
		t.Errorf("UsefulFrac = %v", got)
	}
	if got := u.WastedFrac(WasteMem); got != 0.2 {
		t.Errorf("WastedFrac(mem) = %v", got)
	}
	var empty UnitSlots
	if empty.UsefulFrac() != 0 || empty.WastedFrac(WasteFU) != 0 {
		t.Error("empty slots must report 0")
	}
}

func TestLatencySample(t *testing.T) {
	var s LatencySample
	if s.Mean() != 0 {
		t.Error("empty mean nonzero")
	}
	s.Add(10)
	s.Add(0)
	s.Add(20)
	if s.Count != 3 || s.Sum != 30 {
		t.Fatalf("sample = %+v", s)
	}
	if s.Mean() != 10 {
		t.Errorf("Mean = %v", s.Mean())
	}
	var o LatencySample
	o.Add(30)
	s.Merge(o)
	if s.Count != 4 || s.Mean() != 15 {
		t.Errorf("after merge: %+v", s)
	}
}

func TestCollectorIPC(t *testing.T) {
	var c Collector
	if c.IPC() != 0 {
		t.Error("empty IPC nonzero")
	}
	c.Cycles = 100
	c.Graduated = 268
	if got := c.IPC(); got != 2.68 {
		t.Errorf("IPC = %v", got)
	}
}

func TestCollectorReset(t *testing.T) {
	var c Collector
	c.Cycles = 5
	c.Graduated = 10
	c.PerceivedFP.Add(3)
	c.Slots[0].Issued = 7
	c.Reset()
	if c.Cycles != 0 || c.Graduated != 0 || c.PerceivedFP.Count != 0 || c.Slots[0].Issued != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestMispredictRate(t *testing.T) {
	var c Collector
	if c.MispredictRate() != 0 {
		t.Error("empty rate nonzero")
	}
	c.Branches = 200
	c.Mispredicts = 10
	if got := c.MispredictRate(); got != 0.05 {
		t.Errorf("rate = %v", got)
	}
}

func TestPerceivedCombines(t *testing.T) {
	var c Collector
	c.PerceivedFP.Add(10)
	c.PerceivedInt.Add(30)
	all := c.Perceived()
	if all.Count != 2 || all.Mean() != 20 {
		t.Errorf("combined = %+v", all)
	}
	// Must not mutate the originals.
	if c.PerceivedFP.Count != 1 {
		t.Error("Perceived mutated the FP sample")
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Threads:   3,
		Decoupled: true,
		L2Latency: 16,
		Mem:       mem.Stats{LoadAccesses: 100, LoadMisses: 25},
	}
	r.Cycles = 1000
	r.Graduated = 6190
	s := r.String()
	for _, want := range []string{"threads=3", "decoupled", "L2=16", "IPC=6.190", "AP slots", "EP slots", "load-miss=25.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q in:\n%s", want, s)
		}
	}
	r.Decoupled = false
	if !strings.Contains(r.String(), "non-decoupled") {
		t.Error("non-decoupled mode not rendered")
	}
}

func TestInstMix(t *testing.T) {
	var r Report
	if m := r.InstMix(); m[isa.OpLoad] != 0 {
		t.Error("empty mix nonzero")
	}
	r.Graduated = 10
	r.GraduatedByOp[isa.OpLoad] = 3
	r.GraduatedByOp[isa.OpFPALU] = 4
	r.GraduatedByOp[isa.OpIntALU] = 2
	r.GraduatedByOp[isa.OpBranch] = 1
	m := r.InstMix()
	if m[isa.OpLoad] != 0.3 || m[isa.OpFPALU] != 0.4 {
		t.Errorf("mix = %v", m)
	}
}
