package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpIntALU: "int",
		OpFPALU:  "fp",
		OpLoad:   "load",
		OpStore:  "store",
		OpBranch: "branch",
		Op(200):  "op(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestOpValid(t *testing.T) {
	for i := 0; i < NumOps; i++ {
		if !Op(i).Valid() {
			t.Errorf("Op(%d) should be valid", i)
		}
	}
	if Op(NumOps).Valid() {
		t.Error("Op(NumOps) should be invalid")
	}
}

func TestRegConstructors(t *testing.T) {
	r := IntReg(5)
	if !r.IsInt() || r.IsFP() || !r.Valid() {
		t.Errorf("IntReg(5) classification wrong: %v", r)
	}
	f := FPReg(5)
	if f.IsInt() || !f.IsFP() || !f.Valid() {
		t.Errorf("FPReg(5) classification wrong: %v", f)
	}
	if r == f {
		t.Error("IntReg(5) and FPReg(5) must differ")
	}
}

func TestRegOutOfRangePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { IntReg(-1) },
		func() { IntReg(32) },
		func() { FPReg(-1) },
		func() { FPReg(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			fn()
		}()
	}
}

func TestNoReg(t *testing.T) {
	if NoReg.Valid() {
		t.Error("NoReg must not be valid")
	}
	if NoReg.IsInt() || NoReg.IsFP() {
		t.Error("NoReg must have no class")
	}
	if NoReg.String() != "-" {
		t.Errorf("NoReg.String() = %q", NoReg.String())
	}
}

func TestRegString(t *testing.T) {
	if got := IntReg(3).String(); got != "r3" {
		t.Errorf("IntReg(3).String() = %q", got)
	}
	if got := FPReg(7).String(); got != "f7" {
		t.Errorf("FPReg(7).String() = %q", got)
	}
}

func TestSteering(t *testing.T) {
	cases := []struct {
		inst Inst
		want Unit
	}{
		{Inst{Op: OpIntALU}, AP},
		{Inst{Op: OpFPALU}, EP},
		{Inst{Op: OpLoad, Dest: FPReg(0)}, AP}, // fp load still executes in AP
		{Inst{Op: OpLoad, Dest: IntReg(0)}, AP},
		{Inst{Op: OpStore}, AP},
		{Inst{Op: OpBranch}, AP},
	}
	for _, c := range cases {
		if got := Steer(&c.inst); got != c.want {
			t.Errorf("Steer(%v) = %v, want %v", c.inst.Op, got, c.want)
		}
	}
}

func TestDestUnit(t *testing.T) {
	fpLoad := Inst{Op: OpLoad, Dest: FPReg(2)}
	if DestUnit(&fpLoad) != EP {
		t.Error("fp load destination must live in the EP file")
	}
	intLoad := Inst{Op: OpLoad, Dest: IntReg(2)}
	if DestUnit(&intLoad) != AP {
		t.Error("int load destination must live in the AP file")
	}
	noDest := Inst{Op: OpStore, Dest: NoReg}
	if DestUnit(&noDest) != AP {
		t.Error("no-destination instructions default to AP")
	}
}

func TestRegUnit(t *testing.T) {
	if RegUnit(IntReg(0)) != AP || RegUnit(FPReg(0)) != EP {
		t.Error("RegUnit misclassifies registers")
	}
}

func TestInstPredicates(t *testing.T) {
	ld := Inst{Op: OpLoad}
	st := Inst{Op: OpStore}
	br := Inst{Op: OpBranch}
	alu := Inst{Op: OpIntALU}
	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() || ld.IsBranch() {
		t.Error("load predicates wrong")
	}
	if !st.IsMem() || !st.IsStore() || st.IsLoad() {
		t.Error("store predicates wrong")
	}
	if br.IsMem() || !br.IsBranch() {
		t.Error("branch predicates wrong")
	}
	if alu.IsMem() || alu.IsLoad() || alu.IsStore() || alu.IsBranch() {
		t.Error("alu predicates wrong")
	}
}

func TestInstString(t *testing.T) {
	// Smoke test: all op classes render without panicking and mention
	// their class or operands.
	insts := []Inst{
		{Op: OpIntALU, PC: 4, Dest: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)},
		{Op: OpFPALU, PC: 8, Dest: FPReg(1), Src1: FPReg(2), Src2: FPReg(3)},
		{Op: OpLoad, PC: 12, Dest: FPReg(0), Addr: 0x1000},
		{Op: OpStore, PC: 16, Src1: FPReg(0), Addr: 0x2000},
		{Op: OpBranch, PC: 20, Src1: IntReg(4), Taken: true},
		{Op: OpBranch, PC: 24, Src1: IntReg(4), Taken: false},
	}
	for _, in := range insts {
		if in.String() == "" {
			t.Errorf("empty String() for %v", in.Op)
		}
	}
}

func TestUnitString(t *testing.T) {
	if AP.String() != "AP" || EP.String() != "EP" {
		t.Error("Unit.String wrong")
	}
}

// Property: every valid register is classified into exactly one unit and
// class.
func TestQuickRegClassification(t *testing.T) {
	f := func(raw uint8) bool {
		r := Reg(raw)
		if r.Valid() {
			return r.IsInt() != r.IsFP() // exactly one class
		}
		return !r.IsInt() && !r.IsFP()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Steer and DestUnit agree for every non-load instruction: the
// only instructions that execute in one unit but write the other's file
// are loads.
func TestQuickSteerDestConsistency(t *testing.T) {
	f := func(opRaw, destRaw uint8) bool {
		op := Op(opRaw % uint8(NumOps))
		dest := Reg(destRaw % uint8(NumRegs))
		// Construct the combinations the workload generator can emit:
		// FP ALU writes FP regs, int ALU writes int regs, loads write
		// either, stores/branches write nothing.
		in := Inst{Op: op, Dest: dest}
		switch op {
		case OpFPALU:
			if !dest.IsFP() {
				return true // generator never emits this; skip
			}
		case OpIntALU:
			if !dest.IsInt() {
				return true
			}
		case OpStore, OpBranch:
			in.Dest = NoReg
		}
		if op == OpLoad {
			return Steer(&in) == AP
		}
		return Steer(&in) == DestUnit(&in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
