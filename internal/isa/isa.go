// Package isa defines the Alpha-like instruction set abstraction consumed
// by the trace-driven simulator.
//
// The paper's experiments are trace driven: the timing model never needs
// instruction semantics, only (operation class, register operands, effective
// address, branch outcome) tuples. This package defines that tuple (Inst),
// the logical register file split (32 integer + 32 floating-point registers,
// mirroring the DEC Alpha ISA the paper instruments with ATOM), and the
// access/execute steering rule from Section 2 of the paper: integer
// computation, all memory operations and branches go to the Address
// Processor (AP); floating-point computation goes to the Execute Processor
// (EP).
package isa

import "fmt"

// Op is the operation class of an instruction. The timing model only
// distinguishes classes; within a class all operations share a latency
// (paper Figure 2: AP functional units latency 1, EP latency 4).
type Op uint8

const (
	// OpIntALU is integer computation (add, logic, shifts, address
	// arithmetic, integer compare). Executes in the AP, latency 1.
	OpIntALU Op = iota
	// OpFPALU is floating-point computation (add, mul, div approximated
	// with the same pipelined latency, compare). Executes in the EP,
	// latency 4.
	OpFPALU
	// OpLoad is a memory load. The address computation executes in the AP;
	// the destination register may live in either unit's file (an integer
	// load targets the AP file, a floating-point load targets the EP file
	// — the latter is the decoupling conduit).
	OpLoad
	// OpStore is a memory store. The address computation executes in the
	// AP; the data operand may come from either file.
	OpStore
	// OpBranch is a conditional branch, resolved in the AP. Its source
	// operand is normally an integer condition register; a branch whose
	// condition comes from the EP file models the FP-compare-driven
	// branches that cause loss-of-decoupling events.
	OpBranch
	numOps
)

// NumOps is the number of operation classes.
const NumOps = int(numOps)

func (o Op) String() string {
	switch o {
	case OpIntALU:
		return "int"
	case OpFPALU:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is a defined operation class.
func (o Op) Valid() bool { return o < numOps }

// Reg is a logical register number. 0..31 are integer registers (R0..R31),
// 32..63 are floating-point registers (F0..F31). NoReg means "no operand".
type Reg uint8

const (
	// NumIntRegs is the number of architectural integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 32
	// NumRegs is the total number of architectural registers.
	NumRegs = NumIntRegs + NumFPRegs
	// NoReg marks an absent operand.
	NoReg Reg = 0xFF
)

// IntReg returns the Reg for integer register n (0..31).
func IntReg(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", n))
	}
	return Reg(n)
}

// FPReg returns the Reg for floating-point register n (0..31).
func FPReg(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", n))
	}
	return Reg(NumIntRegs + n)
}

// IsInt reports whether r names an integer register.
func (r Reg) IsInt() bool { return r < NumIntRegs }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumRegs }

// Valid reports whether r names a register (i.e. is not NoReg and in range).
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string {
	switch {
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	case r == NoReg:
		return "-"
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Unit identifies one of the two decoupled processing units.
type Unit uint8

const (
	// AP is the Address Processor: integer ops, memory ops, branches.
	AP Unit = iota
	// EP is the Execute Processor: floating-point ops.
	EP
	numUnits
)

// NumUnits is the number of processing units.
const NumUnits = int(numUnits)

func (u Unit) String() string {
	if u == AP {
		return "AP"
	}
	return "EP"
}

// Inst is one dynamic instruction record, the unit of the trace format.
// It is a value type; the simulator copies it into its in-flight state.
type Inst struct {
	// PC is the instruction address. Static instructions keep stable PCs
	// across loop iterations so branch-predictor indexing behaves
	// realistically.
	PC uint64
	// Op is the operation class.
	Op Op
	// Dest is the destination register, or NoReg.
	Dest Reg
	// Src1, Src2 are source registers, or NoReg. For loads Src1/Src2 are
	// the address operands. For stores Src1 is the data operand and
	// Src2 (plus implicitly the address below) the address operand.
	Src1, Src2 Reg
	// Addr is the effective byte address for loads and stores.
	Addr uint64
	// Size is the access size in bytes for loads and stores (typically 8).
	Size uint8
	// Taken is the branch outcome for OpBranch records.
	Taken bool
}

// IsMem reports whether the instruction accesses memory.
func (i *Inst) IsMem() bool { return i.Op == OpLoad || i.Op == OpStore }

// IsLoad reports whether the instruction is a load.
func (i *Inst) IsLoad() bool { return i.Op == OpLoad }

// IsStore reports whether the instruction is a store.
func (i *Inst) IsStore() bool { return i.Op == OpStore }

// IsBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsBranch() bool { return i.Op == OpBranch }

// Classification tables. Steering, destination-file and register-file
// lookups run once per fetched instruction (several calls each in the
// fetch/rename path), so they are 256-entry tables indexed by the raw
// byte: branch-free, bounds-check-free (every uint8 is in range), and
// shared by every core of a CMP.
var (
	// steerTable maps Op → executing unit (only OpFPALU steers EP).
	steerTable = [256]Unit{OpFPALU: EP}
	// regUnitTable maps Reg → hosting file: EP for F0..F31, AP for the
	// integer registers and for NoReg/invalid encodings (matching the
	// "AP unless a valid FP register" rule the branchy code spelled out).
	regUnitTable = buildRegUnitTable()
)

func buildRegUnitTable() [256]Unit {
	var t [256]Unit
	for r := NumIntRegs; r < NumRegs; r++ {
		t[r] = EP
	}
	return t
}

// Steer returns the unit the instruction is dispatched to under the
// paper's data-type steering: memory instructions and branches go to the
// AP, floating-point computation to the EP, everything else to the AP.
func Steer(i *Inst) Unit { return steerTable[i.Op] }

// DestUnit returns the unit whose physical register file hosts the
// destination register: EP for floating-point destinations, AP otherwise.
// A floating-point load therefore executes in the AP but writes an EP
// register — the mechanism that lets the AP run ahead of the EP.
func DestUnit(i *Inst) Unit { return regUnitTable[i.Dest] }

// RegUnit returns the unit whose file hosts logical register r.
func RegUnit(r Reg) Unit { return regUnitTable[r] }

func (i *Inst) String() string {
	switch i.Op {
	case OpLoad:
		return fmt.Sprintf("%#x: load %s <- [%#x] (%s,%s)", i.PC, i.Dest, i.Addr, i.Src1, i.Src2)
	case OpStore:
		return fmt.Sprintf("%#x: store [%#x] <- %s (%s)", i.PC, i.Addr, i.Src1, i.Src2)
	case OpBranch:
		dir := "nt"
		if i.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%#x: branch(%s) %s,%s", i.PC, dir, i.Src1, i.Src2)
	default:
		return fmt.Sprintf("%#x: %s %s <- %s,%s", i.PC, i.Op, i.Dest, i.Src1, i.Src2)
	}
}
