// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload generators.
//
// The simulator must be bit-reproducible across runs and platforms, and the
// standard library's math/rand does not guarantee a stable stream across Go
// releases. This package implements SplitMix64 (Steele, Lea, Flood 2014),
// whose output stream is fixed by construction, plus the handful of
// convenience samplers the workload layer needs.
package rng

// Source is a deterministic 64-bit PRNG (SplitMix64). The zero value is a
// valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds produce
// statistically independent streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the given seed.
func (s *Source) Seed(seed uint64) {
	s.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free reduction is not needed here;
	// modulo bias is negligible for the small n used by workloads, but we
	// use the high bits which have better equidistribution.
	return int((s.Uint64() >> 11) % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), i.e. the number of trials up to and including the first
// success when the success probability is 1/m. Used for run lengths.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Split derives a new independent Source from this one. The derived stream
// does not overlap the parent stream for practical sequence lengths.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}
