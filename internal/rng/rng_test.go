package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// SplitMix64 reference values for seed 0 (from the public reference
	// implementation). Guards against accidental algorithm changes.
	s := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestSeedReset(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("after reseed got %#x want %#x", got, first)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	for n := 1; n < 40; n++ {
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-1) {
			t.Fatal("Bool(-1) returned true")
		}
		if !s.Bool(2) {
			t.Fatal("Bool(2) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 9 {
		t.Fatalf("Geometric(8) mean = %v, want ~8", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if g := s.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", g)
		}
		if g := s.Geometric(0.5); g != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", g)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// The child stream must not mirror the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child produced %d identical values", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}

// Property: Intn output is always within range for arbitrary seeds and n.
func TestQuickIntnWithinRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed ⇒ same stream prefix.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
