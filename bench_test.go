package daesim

// One testing.B benchmark per figure of the paper (the paper has no
// numbered tables; Figure 2 is the parameter table, checked by the config
// tests). Each benchmark regenerates its figure's sweep at a reduced
// budget and reports the headline reproduced quantities as custom metrics,
// so `go test -bench=. -benchmem` doubles as a smoke reproduction:
//
//	BenchmarkFig3   ... IPC-1T, IPC-3T, speedup-3T
//	BenchmarkFig4   ... dec/non-dec IPC loss at L2=32
//	BenchmarkFig5   ... threads-to-peak for both machines
//
// Figure-quality sweeps (larger budgets, full tables) come from
// `go run ./cmd/dae-sweep -fig all`; EXPERIMENTS.md records those numbers.

import (
	"testing"

	"repro/internal/experiments"
)

// benchBudget trades precision for wall-clock: a few hundred thousand
// instructions per run keeps a full-figure regeneration within seconds.
func benchBudget() experiments.Budget {
	return experiments.Budget{
		WarmupPerThread:  40_000,
		MeasurePerThread: 150_000,
	}
}

// BenchmarkFig1a regenerates Figure 1-a (perceived FP-load miss latency
// per benchmark across L2 latencies) and reports fpppp's and tomcatv's
// 256-cycle points — the paper's outlier and a representative stream code.
func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Latencies) - 1
		b.ReportMetric(r.PerceivedFP[idxOf(b, r.Benchmarks, "fpppp")][last], "fpppp-fp-perc@256")
		b.ReportMetric(r.PerceivedFP[idxOf(b, r.Benchmarks, "tomcatv")][last], "tomcatv-fp-perc@256")
	}
}

// BenchmarkFig1b regenerates Figure 1-b (perceived integer-load miss
// latency) and reports the gather codes' exposure.
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Latencies) - 1
		b.ReportMetric(r.PerceivedInt[idxOf(b, r.Benchmarks, "su2cor")][last], "su2cor-int-perc@256")
		b.ReportMetric(r.PerceivedInt[idxOf(b, r.Benchmarks, "swim")][last], "swim-int-perc@256")
	}
}

// BenchmarkFig1c regenerates Figure 1-c (L1 miss ratios at L2=256).
func BenchmarkFig1c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.LoadMiss[idxOf(b, r.Benchmarks, "hydro2d")], "hydro2d-loadmiss-%")
		b.ReportMetric(100*r.LoadMiss[idxOf(b, r.Benchmarks, "fpppp")], "fpppp-loadmiss-%")
	}
}

// BenchmarkFig1d regenerates Figure 1-d (IPC loss vs L2 latency).
func BenchmarkFig1d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Latencies) - 1
		b.ReportMetric(100*r.IPCLoss[idxOf(b, r.Benchmarks, "su2cor")][last], "su2cor-loss-%@256")
		b.ReportMetric(100*r.IPCLoss[idxOf(b, r.Benchmarks, "applu")][last], "applu-loss-%@256")
	}
}

// BenchmarkFig3 regenerates Figure 3 (issue-slot breakdown vs threads) and
// reports the paper's headline IPCs: 2.68 at 1 thread, 6.19 at 3 threads
// (a 2.31x speedup), 6.65 at 4.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IPC[0], "IPC-1T")
		b.ReportMetric(r.IPC[2], "IPC-3T")
		b.ReportMetric(r.IPC[3], "IPC-4T")
		b.ReportMetric(r.Speedup(3), "speedup-3T")
	}
}

// BenchmarkFig4 regenerates Figure 4 (latency tolerance of the eight
// configurations) and reports the 1→32-cycle IPC losses the paper quotes
// (<4% decoupled, >23% non-decoupled).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		_, _, decLoss, _ := r.At(4, true, 32)
		_, _, nonLoss, _ := r.At(4, false, 32)
		decP, _, _, _ := r.At(4, true, 256)
		b.ReportMetric(-100*decLoss, "dec-loss-%@32")
		b.ReportMetric(-100*nonLoss, "nondec-loss-%@32")
		b.ReportMetric(decP, "dec-perceived@256")
	}
}

// BenchmarkFig5 regenerates Figure 5 (thread requirements) and reports the
// context counts each machine needs to come within 5% of its peak at
// L2=16, plus the non-decoupled bus utilization at 16 threads and L2=64.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(experiments.PeakThreads(r.ThreadsShort, r.IPC16Dec, 0.05)), "dec-peak-threads")
		b.ReportMetric(float64(experiments.PeakThreads(r.ThreadsShort, r.IPC16Non, 0.05)), "nondec-peak-threads")
		b.ReportMetric(100*r.Bus64Non[len(r.Bus64Non)-1], "nondec-bus-%@16T")
	}
}

// BenchmarkAblationUnitWidths measures the paper's deferred design idea
// (per-unit issue widths, §3.1).
func BenchmarkAblationUnitWidths(b *testing.B) {
	benchAblation(b, experiments.AblationUnitWidths)
}

// BenchmarkAblationFetchPolicy compares ICOUNT and round-robin fetch.
func BenchmarkAblationFetchPolicy(b *testing.B) {
	benchAblation(b, experiments.AblationFetchPolicy)
}

// BenchmarkAblationAssoc sweeps L1 associativity.
func BenchmarkAblationAssoc(b *testing.B) {
	benchAblation(b, experiments.AblationAssoc)
}

// BenchmarkAblationForwarding toggles SAQ store→load forwarding.
func BenchmarkAblationForwarding(b *testing.B) {
	benchAblation(b, experiments.AblationForwarding)
}

// BenchmarkAblationMemory sweeps MSHRs and bus width.
func BenchmarkAblationMemory(b *testing.B) {
	benchAblation(b, experiments.AblationMemory)
}

// BenchmarkAblationScaling contrasts fixed and latency-scaled buffering.
func BenchmarkAblationScaling(b *testing.B) {
	benchAblation(b, experiments.AblationScaling)
}

// BenchmarkAblationPolicies compares issue priorities and predictors.
func BenchmarkAblationPolicies(b *testing.B) {
	benchAblation(b, experiments.AblationPolicies)
}

func benchAblation(b *testing.B, run func(experiments.Budget) (*experiments.AblationResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run(benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		best, worst := r.Rows[0].IPC, r.Rows[0].IPC
		for _, row := range r.Rows {
			if row.IPC > best {
				best = row.IPC
			}
			if row.IPC < worst {
				worst = row.IPC
			}
		}
		b.ReportMetric(best, "best-IPC")
		b.ReportMetric(worst, "worst-IPC")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall-clock second) on the 4-thread mix — the figure
// sweeps' cost model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const insts = 400_000
	for i := 0; i < b.N; i++ {
		rep, err := RunMix(Figure2(4), RunOpts{WarmupInsts: 1, MeasureInsts: insts})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Graduated < insts {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "sim-insts/s")
}

func idxOf(b *testing.B, names []string, name string) int {
	b.Helper()
	for i, n := range names {
		if n == name {
			return i
		}
	}
	b.Fatalf("benchmark %s missing", name)
	return -1
}
