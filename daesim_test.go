package daesim

import (
	"strings"
	"testing"
)

func quickOpts() RunOpts {
	return RunOpts{WarmupInsts: 10_000, MeasureInsts: 50_000}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 10 {
		t.Fatalf("%d benchmarks, want the 10 SPEC FP95 models", len(names))
	}
	for _, n := range names {
		if _, err := BenchmarkByName(n); err != nil {
			t.Errorf("BenchmarkByName(%q): %v", n, err)
		}
	}
	if _, err := BenchmarkByName("quake3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmarkQuick(t *testing.T) {
	rep, err := RunBenchmark("tomcatv", Figure2(1), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPC() <= 0.5 || rep.IPC() > 8 {
		t.Fatalf("implausible IPC %.2f", rep.IPC())
	}
	if rep.Threads != 1 || !rep.Decoupled || rep.L2Latency != 16 {
		t.Fatalf("report identity: %+v", rep.Threads)
	}
}

func TestRunMixQuick(t *testing.T) {
	rep, err := RunMix(Figure2(2), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graduated < 50_000 { // MeasureInsts is a machine-wide total
		t.Fatalf("measured %d instructions", rep.Graduated)
	}
	if !strings.Contains(rep.String(), "threads=2") {
		t.Error("report rendering broken")
	}
}

func TestDecouplingWinsOnMix(t *testing.T) {
	// The paper's headline: at a given thread count, decoupling beats the
	// non-decoupled machine, and the gap widens with L2 latency.
	m := Figure2(2).WithL2Latency(64)
	dec, err := RunMix(m, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	non, err := RunMix(m.NonDecoupled(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if dec.IPC() <= non.IPC() {
		t.Fatalf("decoupled %.2f not above non-decoupled %.2f at L2=64", dec.IPC(), non.IPC())
	}
	if dec.Perceived().Mean() >= non.Perceived().Mean() {
		t.Fatalf("decoupled perceived %.1f not below non-decoupled %.1f",
			dec.Perceived().Mean(), non.Perceived().Mean())
	}
}

func TestRunCustomBenchmark(t *testing.T) {
	b, err := BenchmarkByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	b.Name = "mgrid-variant"
	b.Kernels[0].FPChains = 2 // serial chains: should lower IPC
	variant, err := RunCustom(b, Figure2(1), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := RunBenchmark("mgrid", Figure2(1), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if variant.IPC() >= orig.IPC() {
		t.Fatalf("serial-chain variant %.2f not slower than original %.2f", variant.IPC(), orig.IPC())
	}
}

func TestRunCustomRejectsInvalid(t *testing.T) {
	var b Benchmark // zero value: invalid
	if _, err := RunCustom(b, Figure2(1), quickOpts()); err == nil {
		t.Fatal("invalid benchmark accepted")
	}
}

func TestSeedsPerturbRuns(t *testing.T) {
	a, err := RunBenchmark("fpppp", Figure2(1), RunOpts{WarmupInsts: 5_000, MeasureInsts: 30_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark("fpppp", Figure2(1), RunOpts{WarmupInsts: 5_000, MeasureInsts: 30_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// fpppp's data-dependent branches make different seeds measurably
	// different, while the same seed is bit-identical.
	c, err := RunBenchmark("fpppp", Figure2(1), RunOpts{WarmupInsts: 5_000, MeasureInsts: 30_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != c.Cycles {
		t.Fatal("same seed produced different runs")
	}
	if a.Cycles == b.Cycles && a.Mispredicts == b.Mispredicts {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestSection2Preset(t *testing.T) {
	m := Section2().WithL2Latency(128)
	rep, err := RunBenchmark("applu", m, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.L2Latency != 128 {
		t.Fatalf("L2 latency not applied: %d", rep.L2Latency)
	}
	// The 4-wide Section-2 machine cannot exceed 4 IPC.
	if rep.IPC() > 4.01 {
		t.Fatalf("Section-2 IPC %.2f exceeds issue width", rep.IPC())
	}
}

func TestFetchPolicyKnob(t *testing.T) {
	m := Figure2(3)
	m.FetchPolicy = FetchRoundRobin
	rep, err := RunMix(m, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPC() <= 0 {
		t.Fatal("round-robin fetch run failed")
	}
}

func TestCycleCapSurfacesError(t *testing.T) {
	m := Figure2(1)
	_, err := RunMix(m, RunOpts{MeasureInsts: 1 << 40, MaxCycles: 1_000})
	if err == nil {
		t.Fatal("cycle cap not reported")
	}
	if !strings.Contains(err.Error(), "cycle cap") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBudgetConvergence(t *testing.T) {
	// Methodology check: doubling the measurement budget moves the mix
	// IPC by only a few percent — the default windows sample steady
	// state, not a transient.
	small, err := RunMix(Figure2(2), RunOpts{WarmupInsts: 100_000, MeasureInsts: 600_000})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunMix(Figure2(2), RunOpts{WarmupInsts: 100_000, MeasureInsts: 1_200_000})
	if err != nil {
		t.Fatal(err)
	}
	ratio := small.IPC() / large.IPC()
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("IPC not converged: %.3f (600k) vs %.3f (1.2M)", small.IPC(), large.IPC())
	}
}
